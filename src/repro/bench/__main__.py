"""CLI: ``python -m repro.bench [experiment ...]`` prints experiment tables.

Without arguments, every table and figure of the paper is regenerated.
"""

from __future__ import annotations

import sys

from repro.bench.harness import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    names = argv or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    for index, name in enumerate(names):
        if index:
            print()
        print(run_experiment(name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
