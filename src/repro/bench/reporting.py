"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "OOM"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    cells = [
        [format_value(row[col]) if col in row else "" for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)
