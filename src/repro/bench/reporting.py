"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.trace import LaunchRecord

__all__ = ["render_table", "render_trace", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "OOM"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    cells = [
        [format_value(row[col]) if col in row else "" for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def render_trace(
    records: "Iterable[LaunchRecord]", *, title: str | None = None
) -> str:
    """Render launch records (a :class:`~repro.runtime.trace.Trace`) as a table.

    One row per launch with the counters the paper's validation flow
    reconciles — including the compile half: ``cached`` says whether the
    launch's artifact came from the plan cache (``hit``/``miss``, ``-``
    when no compilation happened), ``opt_rm`` how many instructions the
    program optimiser removed — followed by the aggregate summary row
    (``cached`` becomes ``hits/lookups``).

    Passing a :class:`~repro.runtime.trace.Trace` object (rather than a
    bare record iterable) additionally renders its resilience events —
    injected faults, detected corruption, retries, fallbacks, device
    failures, repartitions, watchdog trips — as a second table.
    """
    from repro.runtime.trace import Trace, TraceSummary

    events = list(records.events) if isinstance(records, Trace) else []
    records = list(records)
    rows: list[dict[str, object]] = [
        {
            "api": rec.api,
            "backend": rec.backend,
            "ring": rec.ring,
            "shape": "x".join(str(s) for s in rec.shape),
            "tiles": "x".join(str(t) for t in rec.tiles),
            "mmos": rec.mmo_instructions,
            "unit_ops": rec.unit_ops,
            "cached": (
                "-" if rec.cache_hit is None
                else ("hit" if rec.cache_hit else "miss")
            ),
            "opt_rm": rec.optimizer_removed,
            "wall_ms": rec.wall_time_s * 1e3,
            "cycles": rec.cycle_estimate,
        }
        for rec in records
    ]
    summary = TraceSummary.from_records(records)
    rows.append(
        {
            "api": "TOTAL",
            "backend": "+".join(sorted(summary.by_backend)) or "-",
            "ring": "+".join(sorted(summary.by_ring)) or "-",
            "shape": f"{summary.launches} launches",
            "mmos": summary.mmo_instructions,
            "unit_ops": summary.unit_ops,
            "cached": f"{summary.cache_hits}/{summary.cache_lookups}",
            "opt_rm": summary.optimizer_removed,
            "wall_ms": summary.wall_time_s * 1e3,
            "cycles": summary.cycle_estimate,
        }
    )
    columns = [
        "api", "backend", "ring", "shape", "tiles",
        "mmos", "unit_ops", "cached", "opt_rm", "wall_ms", "cycles",
    ]
    table = render_table(rows, title=title, columns=columns)
    if not events:
        return table
    event_rows: list[dict[str, object]] = [
        {
            "kind": event.kind,
            "api": event.api,
            "backend": event.backend,
            "attempt": event.attempt or "-",
            "device": "-" if event.device_index is None else event.device_index,
            "launch": "-" if event.launch_ordinal is None else event.launch_ordinal,
            "detail": event.detail,
        }
        for event in events
    ]
    event_table = render_table(
        event_rows,
        title=f"resilience events ({len(events)})",
        columns=["kind", "api", "backend", "attempt", "device", "launch", "detail"],
    )
    return table + "\n\n" + event_table
