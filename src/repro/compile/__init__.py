"""The program-compilation layer: lower once, execute many times.

The paper's programming model (Sections 4–5, Figure 6) fixes what a SIMD²
kernel *is* — a per-tile warp program of ``load``/``mmo``/``store`` over a
tile grid — independently of any particular invocation.  This package
makes that split explicit:

- :func:`lower_mmo` turns ``(opcode, tile grid, accumulator?)`` into an
  immutable :class:`CompiledMmo` artifact: the resolved opcode, the
  Figure-6 warp program run through
  :func:`repro.isa.optimizer.optimize_program`, the shared-memory layout
  every emulated launch reuses, and an operand-shape spec the execute
  path validates against;
- :class:`PlanCache` memoizes artifacts under a :class:`PlanKey`
  (opcode, tile grid, has-accumulator, boolean-ness) with hit/miss/
  eviction counters, so a closure loop relaunching the same shape pays
  for lowering exactly once;
- :func:`compile_mmo` is the cached entry the dispatch layer calls: it
  resolves the context's cache (or the process-wide default) and returns
  ``(artifact, cache_hit)``.

Layering: ``apps → runtime → compile → backends`` — the runtime dispatch
seam compiles here, then hands the artifact to a backend's ``execute``.
This package imports only ``repro.core``, ``repro.isa`` and the low-level
``repro.runtime.api`` builder; it never imports the dispatch layer or the
backends, keeping the dependency direction one-way.
"""

from repro.compile.artifact import CompileError, CompiledMmo, grid_for
from repro.compile.cache import (
    CacheStats,
    PlanCache,
    PlanKey,
    default_plan_cache,
)
from repro.compile.lower import (
    build_tile_mmo_program,
    compile_mmo,
    lower_mmo,
    plan_key_for,
    resolve_opcode,
    verify_lowering,
)

__all__ = [
    "CacheStats",
    "CompileError",
    "CompiledMmo",
    "PlanCache",
    "PlanKey",
    "build_tile_mmo_program",
    "compile_mmo",
    "default_plan_cache",
    "grid_for",
    "lower_mmo",
    "plan_key_for",
    "resolve_opcode",
    "verify_lowering",
]
