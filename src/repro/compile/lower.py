"""Lowering: tile grid → optimised warp program + shared-memory layout.

This is the compile half of the compile/execute split.  It owns the
Figure-6 program generator (:func:`build_tile_mmo_program`, historically
in ``repro.runtime.kernels``), runs every generated program through the
peephole optimiser, and packages the result as an immutable
:class:`~repro.compile.artifact.CompiledMmo`.  :func:`compile_mmo` is the
cached front door the dispatch layer uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compile.artifact import CompileError, CompiledMmo, grid_for
from repro.compile.cache import PlanCache, PlanKey, default_plan_cache
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.isa.opcodes import ElementType, IsaError, MmoOpcode
from repro.isa.optimizer import optimize_program
from repro.isa.program import Program
from repro.isa.verifier import VerificationReport, verify_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Backend
    from repro.runtime.context import ExecutionContext

# NOTE: nothing in repro.compile may import repro.runtime (or
# repro.backends) at module level — repro.runtime.kernels imports this
# module, so a module-level import upward would close an import cycle
# whichever package loads first.  The one genuine upward reference,
# TileProgramBuilder, is imported inside build_tile_mmo_program.

__all__ = [
    "build_tile_mmo_program",
    "compile_mmo",
    "lower_mmo",
    "plan_key_for",
    "resolve_opcode",
    "verify_lowering",
]

_TILE_ELEMS = TILE * TILE


def resolve_opcode(ring: Semiring | str | MmoOpcode) -> MmoOpcode:
    """Normalise any ring spelling (object, name, opcode) to an opcode."""
    if isinstance(ring, MmoOpcode):
        return ring
    return MmoOpcode.from_semiring(get_semiring(ring))


def build_tile_mmo_program(
    opcode: MmoOpcode, tiles_k: int, *, boolean: bool
) -> tuple[Program, int, int]:
    """Build the per-output-tile warp program of the Figure 6 kernel.

    Shared-memory layout (element addresses within each type's space):

    - A panel: ``tiles_k`` input tiles at ``kk * 256``,
    - B panel: ``tiles_k`` input tiles at ``(tiles_k + kk) * 256``,
    - C tile then D tile in the output element space, starting past the
      input panel bytes.

    Returns ``(program, c_addr, d_addr)`` with the output-space addresses.
    """
    from repro.runtime.api import RuntimeError_, TileProgramBuilder

    if tiles_k <= 0:
        raise RuntimeError_(f"tiles_k must be positive, got {tiles_k}")
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    input_bytes = in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS
    c_addr = ceil_div(input_bytes, out_etype.nbytes)
    d_addr = c_addr + _TILE_ELEMS

    builder = TileProgramBuilder(boolean=boolean)
    a_frag = builder.matrix("a")
    b_frag = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(acc, addr=c_addr, ld=TILE)
    for kk in range(tiles_k):
        builder.loadmatrix(a_frag, addr=kk * _TILE_ELEMS, ld=TILE)
        builder.loadmatrix(b_frag, addr=(tiles_k + kk) * _TILE_ELEMS, ld=TILE)
        builder.mmo(acc, a_frag, b_frag, acc, opcode)
    builder.storematrix(addr=d_addr, source=acc, ld=TILE)
    return builder.build(), c_addr, d_addr


def verify_lowering(
    program: Program,
    opcode: MmoOpcode,
    grid: tuple[int, int, int],
    *,
    shared_limit: int | None = None,
    stage: str = "lowering",
) -> VerificationReport:
    """Statically verify one lowered program, raising on any diagnostic.

    The compile layer's verification seam: runs
    :func:`~repro.isa.verifier.verify_program` with the ISA tile geometry
    and (for the optimised program) the artifact's shared-memory layout as
    the footprint limit, and turns a failing report into a
    :class:`~repro.compile.artifact.CompileError` carrying every
    instruction-indexed diagnostic.  Exposed separately from
    :func:`lower_mmo` so tests (and alternative backends with their own
    generators) can subject hand-built programs to exactly the gate every
    artifact passes through.
    """
    report = verify_program(program, tile=TILE, shared_limit=shared_limit)
    if not report.ok:
        diagnostics = "; ".join(report.errors)
        raise CompileError(
            f"{stage} of mmo.{opcode.mnemonic} for tile grid {grid} produced "
            f"an invalid program: {diagnostics}"
        )
    return report


def lower_mmo(
    opcode: MmoOpcode,
    tiles_m: int,
    tiles_n: int,
    tiles_k: int,
    *,
    has_accumulator: bool,
) -> "CompiledMmo":
    """Lower one tile grid to a verified, optimised, immutable artifact.

    Builds the naive Figure-6 program, statically verifies it
    (:func:`verify_lowering` — type, semiring-legality, liveness and
    register-budget checks), runs it through
    :func:`~repro.isa.optimizer.optimize_program` in validated mode (the
    optimised program must provably preserve the store set and per-store
    reaching dataflow), then verifies the optimised program against the
    computed shared-memory layout.  The final
    :class:`~repro.isa.verifier.VerificationReport` ships inside the
    artifact, so the :class:`~repro.compile.cache.PlanCache` amortises
    verification exactly like it amortises lowering.  Any diagnostic
    surfaces as a :class:`~repro.compile.artifact.CompileError` before an
    artifact exists.
    """
    boolean = opcode.semiring.is_boolean()
    grid = (tiles_m, tiles_n, tiles_k)
    program, c_addr, d_addr = build_tile_mmo_program(
        opcode, tiles_k, boolean=boolean
    )
    verify_lowering(program, opcode, grid)
    try:
        optimized = optimize_program(program, validate=True)
    except IsaError as exc:
        raise CompileError(
            f"optimisation of mmo.{opcode.mnemonic} for tile grid {grid} "
            f"changed observable behaviour: {exc}"
        ) from exc
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    shared_bytes = (
        in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS
        + out_etype.nbytes * 2 * _TILE_ELEMS
    ) + 64
    report = verify_lowering(
        optimized.program, opcode, grid,
        shared_limit=shared_bytes, stage="optimisation",
    )
    return CompiledMmo(
        opcode=opcode,
        boolean=boolean,
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        has_accumulator=has_accumulator,
        program=optimized.program,
        removed_loads=optimized.removed_loads,
        removed_writes=optimized.removed_writes,
        c_addr=c_addr,
        d_addr=d_addr,
        shared_bytes=shared_bytes,
        in_etype=in_etype,
        out_etype=out_etype,
        verification=report,
    )


def plan_key_for(
    opcode: MmoOpcode, m: int, n: int, k: int, *, has_accumulator: bool
) -> PlanKey:
    """The cache key of a launch, from raw operand shapes."""
    tiles_m, tiles_n, tiles_k = grid_for(m, n, k)
    return PlanKey(
        opcode=opcode,
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        has_accumulator=has_accumulator,
        boolean=opcode.semiring.is_boolean(),
    )


def compile_mmo(
    backend: "Backend",
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    *,
    has_accumulator: bool,
    context: "ExecutionContext | None" = None,
    cache: PlanCache | None = None,
) -> "tuple[CompiledMmo, bool]":
    """Compile (or replay) the artifact for one launch shape.

    Resolves the cache — explicit ``cache`` argument, then the context's
    ``plan_cache``, then the process-wide default — and memoizes
    ``backend.compile(...)`` under the launch's :class:`PlanKey`.
    Returns ``(artifact, cache_hit)``; the dispatch layer records the hit
    flag on the launch's trace record.
    """
    if cache is None:
        ctx_cache = None if context is None else context.plan_cache
        cache = ctx_cache if ctx_cache is not None else default_plan_cache()
    key = plan_key_for(opcode, m, n, k, has_accumulator=has_accumulator)
    return cache.get_or_compile(
        key,
        lambda: backend.compile(
            opcode, m, n, k, has_accumulator=has_accumulator, context=context
        ),
    )
