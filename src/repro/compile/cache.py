"""A keyed, size-bounded memo of compilation artifacts.

The cache exists for one workload shape: host loops (closure iteration,
batched launches, split-k, multi-device bands) that relaunch the *same*
tile grid dozens of times.  Keying on :class:`PlanKey` — opcode, tile
grid, accumulator presence, boolean-ness — means every relaunch after the
first replays the memoized :class:`~repro.compile.artifact.CompiledMmo`
instead of re-lowering and re-optimising the warp program.

``PlanCache(maxsize=0)`` disables memoization (every launch compiles
fresh) — the bench harness uses that to measure what the cache saves.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.artifact import CompiledMmo
    from repro.isa.opcodes import MmoOpcode

__all__ = ["CacheStats", "PlanCache", "PlanKey", "default_plan_cache"]

#: Default number of artifacts the process-wide cache retains.  An
#: artifact is a few hundred bytes of frozen dataclasses; 128 distinct
#: (opcode, grid) combinations comfortably covers every workload in the
#: repository while bounding a pathological shape sweep.
DEFAULT_MAXSIZE = 128


class PlanKey(NamedTuple):
    """What makes two launches share one compiled artifact."""

    opcode: "MmoOpcode"
    tiles_m: int
    tiles_n: int
    tiles_k: int
    has_accumulator: bool
    boolean: bool


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache of :class:`CompiledMmo` artifacts with observable counters.

    Thread-safe: the bookkeeping is held under a lock, while the compile
    callback runs outside it (two threads racing on the same key may both
    compile; the artifacts are identical and the last insert wins).
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[PlanKey, CompiledMmo]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get_or_compile(
        self, key: PlanKey, compile_fn: "Callable[[], CompiledMmo]"
    ) -> "tuple[CompiledMmo, bool]":
        """Return ``(artifact, cache_hit)``, compiling on a miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return cached, True
            self._misses += 1
        artifact = compile_fn()
        if self.maxsize > 0:
            with self._lock:
                self._entries[key] = artifact
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return artifact, False

    def get(self, key: PlanKey) -> "CompiledMmo | None":
        """Peek without counting a hit/miss (tests, introspection)."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry; the counters keep their history."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Counter reads take the lock like stats() does: an unlocked read can
    # observe a torn hit/miss pair while another thread is mid-update.
    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"PlanCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )


#: The process-wide cache used when an ExecutionContext carries none.
_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The shared cache behind every context without an explicit one."""
    return _DEFAULT_CACHE
