"""The immutable compilation artifact a whole-matrix mmo lowers to.

A :class:`CompiledMmo` is everything about a launch that does **not**
depend on the operand values: the resolved opcode, the tile grid, the
optimised per-tile warp program, the shared-memory layout the emulated
backend stages panels into, and the element types of the datapath.  Two
launches with the same :class:`~repro.compile.cache.PlanKey` share one
artifact — that is the contract the :class:`~repro.compile.cache.PlanCache`
memoizes on.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.tiles import TILE, ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.cache import PlanKey
    from repro.isa.opcodes import ElementType, MmoOpcode
    from repro.isa.program import Program
    from repro.isa.verifier import VerificationReport

__all__ = ["CompileError", "CompiledMmo", "grid_for"]


class CompileError(RuntimeError):
    """Lowering failure or operand/artifact mismatch at execute time.

    Subclasses plain :class:`RuntimeError` (not the runtime layer's
    ``RuntimeError_``) deliberately: the compile layer sits *below*
    :mod:`repro.runtime` in the dependency order, so it must not import
    from it at module level.
    """


def grid_for(m: int, n: int, k: int) -> tuple[int, int, int]:
    """The 16×16 tile grid ``(tiles_m, tiles_n, tiles_k)`` of an mmo.

    ``tiles_k`` follows the :class:`~repro.runtime.kernels.KernelStats`
    convention: ``ceil(k / 16)`` for ``k > 0`` and ``1`` for ``k == 0``
    (one fully-absorbed inner step, so every tile program runs at least
    one mmo instruction).
    """
    return ceil_div(m, TILE), ceil_div(n, TILE), ceil_div(k, TILE) if k else 1


@dataclasses.dataclass(frozen=True)
class CompiledMmo:
    """One whole-matrix mmo, lowered and ready to execute many times.

    Fields
    ------
    opcode / boolean:
        The resolved :class:`~repro.isa.opcodes.MmoOpcode` and whether the
        ring runs on the boolean (``b8``) datapath.
    tiles_m / tiles_n / tiles_k:
        The tile grid the artifact was lowered for — the operand-shape
        spec: any ``(m, n, k)`` mapping onto this grid (and matching
        ``has_accumulator``) may execute it, checked by
        :meth:`validate_operands`.
    has_accumulator:
        Whether launches carry an explicit ``C`` operand.
    program:
        The per-output-tile warp program, already run through
        :func:`repro.isa.optimizer.optimize_program`.
    removed_loads / removed_writes:
        What the optimiser removed from the naive lowering (the
        observability layer surfaces their sum per launch).
    c_addr / d_addr / shared_bytes / in_etype / out_etype:
        The shared-memory layout: element addresses of the C and D tiles
        in the output element space, the per-tile scratchpad size in
        bytes, and the input/output element formats.
    verification:
        The :class:`~repro.isa.verifier.VerificationReport` of the
        optimised program, produced at lower time with the artifact's
        layout as the footprint limit.  Always populated by
        :func:`~repro.compile.lower.lower_mmo` (a failing report raises
        :class:`CompileError` instead of constructing the artifact), and
        cached with the plan — replayed launches reuse the report without
        re-verifying.
    """

    opcode: "MmoOpcode"
    boolean: bool
    tiles_m: int
    tiles_n: int
    tiles_k: int
    has_accumulator: bool
    program: "Program"
    removed_loads: int
    removed_writes: int
    c_addr: int
    d_addr: int
    shared_bytes: int
    in_etype: "ElementType"
    out_etype: "ElementType"
    verification: "VerificationReport | None" = None

    @property
    def grid(self) -> tuple[int, int, int]:
        return self.tiles_m, self.tiles_n, self.tiles_k

    @property
    def optimizer_removed(self) -> int:
        """Instructions the optimiser removed from the naive lowering."""
        return self.removed_loads + self.removed_writes

    @property
    def key(self) -> "PlanKey":
        """The cache key this artifact is memoized under."""
        from repro.compile.cache import PlanKey

        return PlanKey(
            opcode=self.opcode,
            tiles_m=self.tiles_m,
            tiles_n=self.tiles_n,
            tiles_k=self.tiles_k,
            has_accumulator=self.has_accumulator,
            boolean=self.boolean,
        )

    def validate_operands(
        self, m: int, n: int, k: int, *, has_accumulator: bool
    ) -> None:
        """Check that ``(m, n, k)`` operands may replay this artifact.

        Raises :class:`CompileError` when the operand tile grid or the
        accumulator presence disagrees with what the artifact was
        compiled for — the execute path calls this so a stale artifact
        fails loudly instead of producing a wrong-shaped launch.
        """
        grid = grid_for(m, n, k)
        if grid != self.grid:
            raise CompileError(
                f"operands ({m}, {n}, {k}) imply tile grid {grid}, but this "
                f"artifact was compiled for {self.grid}"
            )
        if has_accumulator != self.has_accumulator:
            raise CompileError(
                f"artifact compiled with has_accumulator="
                f"{self.has_accumulator}, launch supplies "
                f"has_accumulator={has_accumulator}"
            )
