"""The autotune table: observed launch times, bucketed and persistable.

The cost model in :mod:`repro.timing.backend_cost` is calibrated once,
offline; real substrates drift (cache pressure, host load, operand
structure the density summary misses).  The :class:`AutotuneTable` closes
the loop: every launch under an adaptive context lands one observation —
``(backend, opcode, shape bucket, density bin) → wall seconds`` — via
:class:`AutotuneHook` at the pipeline's ``post_execute`` point, and the
planner prefers an observed time over the model estimate for the same
bucket.  Buckets are half-octave in each dimension and quarter-decade in
density, coarse enough that a closure loop's slightly-varying iterates
share entries, fine enough that the sparse/dense crossover stays
resolvable.

The table is thread-safe (one lock over the entry map, mirroring
:class:`~repro.compile.cache.PlanCache`) and JSON round-trippable
(:meth:`AutotuneTable.save` / :meth:`AutotuneTable.load`), so a warmed
table can ship next to the committed plan-cache artifacts.  A process-wide
default (:func:`default_autotune_table`) backs every context that does
not carry its own, exactly like :func:`~repro.compile.cache
.default_plan_cache`.
"""

from __future__ import annotations

import dataclasses
import json
import math
import threading
from typing import TYPE_CHECKING, NamedTuple

from repro.hooks.pipeline import Hook
from repro.hooks.registry import register_hook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hooks.pipeline import Launch

__all__ = [
    "AutotuneEntry",
    "AutotuneHook",
    "AutotuneKey",
    "AutotuneTable",
    "REPROBE_OBSERVATIONS",
    "default_autotune_table",
]

#: Densities below this clamp share the sparsest bin.
_MIN_DENSITY = 1e-4

#: Observation count below which a bucket's best time is not yet trusted
#: against a strong model contradiction.  One scheduling burst can poison
#: a fresh bucket's ``best_s`` by an order of magnitude, and pure
#: best-observed exploitation would then starve the poisoned backend of
#: the re-measurement that clears it; the planner re-probes such buckets
#: (see ``Planner.plan``) until they hold this many samples.
REPROBE_OBSERVATIONS = 3


def _dim_bucket(dim: int) -> int:
    """Half-octave bucket of one launch dimension (0 gets its own)."""
    if dim <= 0:
        return -1
    return int(round(2.0 * math.log2(dim)))


def _density_bin(density: float) -> int:
    """Quarter-decade bucket of an explicit-entry fraction."""
    clamped = min(1.0, max(_MIN_DENSITY, density))
    return int(round(4.0 * math.log10(clamped)))


class AutotuneKey(NamedTuple):
    """What makes two launches share one observation bucket."""

    backend: str
    opcode: str
    m_bucket: int
    n_bucket: int
    k_bucket: int
    density_a_bin: int
    density_b_bin: int

    @classmethod
    def bucket(
        cls,
        backend: str,
        opcode: str,
        *,
        m: int,
        n: int,
        k: int,
        density_a: float = 1.0,
        density_b: float = 1.0,
    ) -> "AutotuneKey":
        return cls(
            backend=backend,
            opcode=opcode,
            m_bucket=_dim_bucket(m),
            n_bucket=_dim_bucket(n),
            k_bucket=_dim_bucket(k),
            density_a_bin=_density_bin(density_a),
            density_b_bin=_density_bin(density_b),
        )


@dataclasses.dataclass
class AutotuneEntry:
    """Accumulated observations of one bucket.

    ``best_s`` (the minimum observed wall time) is what the planner
    consumes: it is robust to one-off scheduling noise, matching the
    min-of-repeats discipline the bench harness times with.
    """

    count: int = 0
    total_s: float = 0.0
    best_s: float = math.inf

    def observe(self, wall_time_s: float) -> None:
        self.count += 1
        self.total_s += wall_time_s
        if wall_time_s < self.best_s:
            self.best_s = wall_time_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else math.inf


class AutotuneTable:
    """Thread-safe store of observed launch wall times, by bucket.

    ``record`` folds one observation in; ``observed`` returns the bucket's
    best time or ``None`` when the bucket is cold — the planner's signal
    to fall back to the model estimate.  ``save``/``load`` round-trip the
    table through JSON so a warmed table persists next to the plan cache
    artifacts.
    """

    #: Bound on the memoised-plan map (see :meth:`cached_plan`).
    _PLAN_CACHE_LIMIT = 256

    def __init__(self) -> None:
        self._entries: dict[AutotuneKey, AutotuneEntry] = {}
        self._lock = threading.Lock()
        # Plans memoised against _version: a recorded observation only
        # invalidates them when it could change a planner ranking (a new
        # bucket, or an improved best_s) — steady-state relaunches of one
        # shape replan from this map instead of repricing every backend.
        self._version = 0
        self._plans: dict[tuple, tuple[int, object]] = {}

    @property
    def version(self) -> int:
        """Bumped whenever an observation could change a plan ranking."""
        with self._lock:
            return self._version

    # ------------------------------------------------------------------
    def record(
        self,
        backend: str,
        opcode: str,
        *,
        m: int,
        n: int,
        k: int,
        density_a: float = 1.0,
        density_b: float = 1.0,
        wall_time_s: float,
    ) -> None:
        if wall_time_s < 0:
            return
        key = AutotuneKey.bucket(
            backend, opcode, m=m, n=n, k=k,
            density_a=density_a, density_b=density_b,
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = AutotuneEntry()
            # An observation invalidates memoised plans when it could
            # change a ranking: a new per-bucket best, or any sample
            # landing in a bucket still below the re-probe trust count
            # (the count itself feeds the planner's re-probe decision).
            if wall_time_s < entry.best_s or entry.count < REPROBE_OBSERVATIONS:
                self._version += 1
            entry.observe(wall_time_s)

    # ------------------------------------------------------------------
    def cached_plan(self, plan_key: tuple) -> object | None:
        """The plan memoised for ``plan_key``, unless observations moved on."""
        with self._lock:
            hit = self._plans.get(plan_key)
            if hit is None or hit[0] != self._version:
                return None
            return hit[1]

    def cache_plan(self, plan_key: tuple, plan: object) -> None:
        """Memoise ``plan`` against the table's current version."""
        with self._lock:
            if len(self._plans) >= self._PLAN_CACHE_LIMIT:
                self._plans.clear()
            self._plans[plan_key] = (self._version, plan)

    def observed(
        self,
        backend: str,
        opcode: str,
        *,
        m: int,
        n: int,
        k: int,
        density_a: float = 1.0,
        density_b: float = 1.0,
    ) -> float | None:
        """Best observed seconds for the bucket, or ``None`` when cold."""
        key = AutotuneKey.bucket(
            backend, opcode, m=m, n=n, k=k,
            density_a=density_a, density_b=density_b,
        )
        with self._lock:
            entry = self._entries.get(key)
            return entry.best_s if entry is not None and entry.count else None

    def observed_many(
        self,
        backends: "list[str] | tuple[str, ...]",
        opcode: str,
        *,
        m: int,
        n: int,
        k: int,
        density_a: float = 1.0,
        density_b: float = 1.0,
    ) -> dict[str, tuple[float, int] | None]:
        """``(best seconds, sample count)`` per backend, or ``None`` cold.

        One lock for the whole plan: the planner prices every capable
        backend for one launch bucket, and doing that through
        :meth:`observed` pays a lock round-trip per backend on the
        dispatch hot path.  The count funds the re-probe decision — a
        bucket below :data:`REPROBE_OBSERVATIONS` samples may still be
        noise-poisoned.
        """
        m_b, n_b, k_b = _dim_bucket(m), _dim_bucket(n), _dim_bucket(k)
        a_bin, b_bin = _density_bin(density_a), _density_bin(density_b)
        with self._lock:
            out: dict[str, tuple[float, int] | None] = {}
            for name in backends:
                entry = self._entries.get(
                    AutotuneKey(name, opcode, m_b, n_b, k_b, a_bin, b_bin)
                )
                out[name] = (
                    (entry.best_s, entry.count)
                    if entry is not None and entry.count
                    else None
                )
            return out

    def observation_count(
        self,
        backend: str,
        opcode: str,
        *,
        m: int,
        n: int,
        k: int,
        density_a: float = 1.0,
        density_b: float = 1.0,
    ) -> int:
        key = AutotuneKey.bucket(
            backend, opcode, m=m, n=n, k=k,
            density_a=density_a, density_b=density_b,
        )
        with self._lock:
            entry = self._entries.get(key)
            return entry.count if entry is not None else 0

    def snapshot(self) -> dict[AutotuneKey, AutotuneEntry]:
        """A consistent copy of every bucket (entries are copies too)."""
        with self._lock:
            return {
                key: dataclasses.replace(entry)
                for key, entry in self._entries.items()
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._plans.clear()
            self._version += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AutotuneTable({len(self)} buckets)"

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        with self._lock:
            entries = [
                {
                    "backend": key.backend,
                    "opcode": key.opcode,
                    "m_bucket": key.m_bucket,
                    "n_bucket": key.n_bucket,
                    "k_bucket": key.k_bucket,
                    "density_a_bin": key.density_a_bin,
                    "density_b_bin": key.density_b_bin,
                    "count": entry.count,
                    "total_s": entry.total_s,
                    "best_s": entry.best_s,
                }
                for key, entry in sorted(self._entries.items())
            ]
        return {"version": 1, "entries": entries}

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> "AutotuneTable":
        table = cls()
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            raise ValueError("autotune payload 'entries' must be a list")
        with table._lock:
            for raw in entries:
                key = AutotuneKey(
                    backend=str(raw["backend"]),
                    opcode=str(raw["opcode"]),
                    m_bucket=int(raw["m_bucket"]),
                    n_bucket=int(raw["n_bucket"]),
                    k_bucket=int(raw["k_bucket"]),
                    density_a_bin=int(raw["density_a_bin"]),
                    density_b_bin=int(raw["density_b_bin"]),
                )
                table._entries[key] = AutotuneEntry(
                    count=int(raw["count"]),
                    total_s=float(raw["total_s"]),
                    best_s=float(raw["best_s"]),
                )
        return table

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "AutotuneTable":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


#: The process-wide table used when an ExecutionContext carries none.
_DEFAULT_TABLE = AutotuneTable()


def default_autotune_table() -> AutotuneTable:
    """The shared table behind every context without an explicit one."""
    return _DEFAULT_TABLE


@register_hook(name="autotune")
class AutotuneHook(Hook):
    """Feed observed launch wall times into the context's autotune table.

    Assembled automatically by :func:`~repro.hooks.pipeline
    .build_pipeline` whenever the context is adaptive (``backend="auto"``
    or an explicit ``autotune=`` table); stateless — the table comes from
    the launch's context (falling back to the process-wide default), and
    the recorded backend is the *concrete* backend the dispatch seam
    selected, never ``"auto"`` itself.  Degenerate launches (no kernel
    ran) record nothing.
    """

    def post_execute(self, launch: "Launch") -> None:
        if launch.degenerate or launch.stats is None:
            return
        context = launch.context
        from repro.backends.base import get_backend

        impl = get_backend(context.backend)
        if getattr(impl, "select_backend", None) is not None:
            return  # a planning backend's own time prices nothing
        # The dispatch seam leaves the plan's density estimates on the
        # carrier (see kernels._note_plan_densities); only launches that
        # reached here without a plan (explicit autotune= on a static
        # context) estimate afresh.
        densities = (launch.notes or {}).get("plan_densities")
        if densities is None:
            from repro.sparse.density import estimate_density

            semiring = launch.opcode.semiring
            densities = (
                estimate_density(launch.a, semiring),
                estimate_density(launch.b, semiring),
            )
        stats = launch.stats
        table = (
            context.autotune
            if context.autotune is not None
            else default_autotune_table()
        )
        table.record(
            context.backend,
            launch.opcode.name,
            m=stats.m,
            n=stats.n,
            k=stats.k,
            density_a=densities[0],
            density_b=densities[1],
            wall_time_s=launch.wall_time_s,
        )
