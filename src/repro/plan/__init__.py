"""Adaptive dispatch: backend choice as an explicit planning stage.

Callers used to pick an execution substrate by hand (``backend=
"sparse"``); this package inverts that into the layered form the serving
tier needs — *request → planner → plan → executor*:

- :class:`~repro.plan.planner.Planner` ranks every capable registered
  backend for a concrete ``(opcode, shape, ring, density)`` launch into
  a :class:`~repro.plan.planner.DispatchPlan`, seeded from the
  substrate-calibrated cost model (:mod:`repro.timing.backend_cost`) and
  refined from observed launch wall times;
- :class:`~repro.plan.autotune.AutotuneTable` is the thread-safe,
  JSON-persistable store of those observations, filled by
  :class:`~repro.plan.autotune.AutotuneHook` at the ``post_execute``
  lifecycle point;
- :class:`~repro.plan.backend.AutoBackend` registers the whole stage as
  ``backend="auto"``, so every runtime entry point (``mmo_tiled``,
  closure, batched, split-k, multi-device) routes through the planner
  with no signature changes — loop entry points re-plan per iteration,
  which is what lets closure launches migrate from sparse to dense as
  the iterated operand densifies past the predicted crossover.
"""

from repro.plan.autotune import (
    REPROBE_OBSERVATIONS,
    AutotuneEntry,
    AutotuneHook,
    AutotuneKey,
    AutotuneTable,
    default_autotune_table,
)
from repro.plan.planner import (
    MODEL_ERROR_BAND,
    DispatchPlan,
    PlanCandidate,
    PlanError,
    Planner,
    crossover_density,
    planner_order,
)
from repro.plan.backend import AutoBackend

__all__ = [
    "AutoBackend",
    "AutotuneEntry",
    "AutotuneHook",
    "AutotuneKey",
    "AutotuneTable",
    "DispatchPlan",
    "MODEL_ERROR_BAND",
    "PlanCandidate",
    "PlanError",
    "Planner",
    "REPROBE_OBSERVATIONS",
    "crossover_density",
    "default_autotune_table",
    "planner_order",
]
