"""``backend="auto"``: the planning stage registered as a backend.

Registering the planner under a backend name is what lets every entry
point adopt adaptive dispatch without signature changes: the dispatch
seam (:func:`repro.runtime.kernels.mmo_tiled` /
:func:`~repro.runtime.kernels.execute_compiled`) recognises a backend
that exposes :meth:`AutoBackend.select_backend`, asks it for the launch's
:class:`~repro.plan.planner.DispatchPlan`, rewrites the context to the
chosen *concrete* backend and dispatches there.  Consequences worth
spelling out:

- results are **bit-identical** to running the chosen static backend
  directly — the compiled artifact is backend-agnostic and the chosen
  backend's ``execute`` runs unchanged;
- trace ``LaunchRecord``\\ s name the concrete backend that ran (the
  decision itself is surfaced as a
  :class:`~repro.runtime.trace.PlanRecord` via the ``on_plan`` channel);
- loop entry points that replay a compiled artifact re-select *per
  iteration*, so closure loops re-plan as the iterate's density drifts
  across the predicted crossover.

``execute`` also works when called directly (it selects, then delegates)
for callers that bypass the dispatch seam.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.backends.base import (
    BackendCapabilities,
    MmoBackend,
    get_backend,
    register_backend,
)
from repro.sparse.density import estimate_density

from repro.plan.autotune import default_autotune_table
from repro.plan.planner import DispatchPlan, Planner

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.compile.artifact import CompiledMmo
    from repro.isa.opcodes import MmoOpcode
    from repro.runtime.context import ExecutionContext
    from repro.runtime.kernels import KernelStats

__all__ = ["AutoBackend"]


class AutoBackend(MmoBackend):
    """Plan, then delegate: the registry face of :class:`Planner`.

    Capabilities are permissive — per-launch capability filtering is the
    planner's job, and a ring no concrete backend supports raises a
    :class:`~repro.plan.planner.PlanError` naming the gap instead of a
    blanket rejection.
    """

    name = "auto"
    # Conservatively not thread_safe: selection may route any launch to
    # the emulate backend's shared default device.
    capabilities = BackendCapabilities(thread_safe=False)

    def select_backend(
        self,
        opcode: "MmoOpcode",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[str, DispatchPlan]":
        """The concrete backend for these operands, plus the full plan.

        When the context carries a
        :class:`~repro.resilience.breaker.BreakerBoard`, candidates
        whose breaker is open are filtered out of the ranking *after*
        the planner's cache (health is per dispatch, not per plan) and
        recorded on ``plan.breaker_skipped``.  Half-open backends are
        admitted — the dispatch is their recovery probe, claimed via
        :meth:`~repro.resilience.breaker.BreakerBoard.try_acquire`.  If
        every candidate is blocked the plan passes through unfiltered
        (fail open): a certain skip-everything error helps nobody, and
        the launch doubles as the probe that re-admits the healthiest
        candidate.
        """
        semiring = opcode.semiring
        m, k = a.shape
        n = b.shape[1]
        table = (
            context.autotune
            if context.autotune is not None
            else default_autotune_table()
        )
        plan = Planner(table).plan(
            opcode, m, n, k,
            has_accumulator=c is not None,
            density_a=estimate_density(a, semiring),
            density_b=estimate_density(b, semiring),
        )
        board = getattr(context, "breakers", None)
        if board is not None:
            blocked = tuple(
                cand.backend
                for cand in plan.candidates
                if board.blocked(cand.backend)
            )
            if blocked and len(blocked) < len(plan.candidates):
                plan = dataclasses.replace(
                    plan,
                    candidates=tuple(
                        cand
                        for cand in plan.candidates
                        if cand.backend not in blocked
                    ),
                    breaker_skipped=blocked,
                )
            board.try_acquire(plan.best.backend)
        return plan.best.backend, plan

    def execute(
        self,
        compiled: "CompiledMmo",
        a: "np.ndarray",
        b: "np.ndarray",
        c: "np.ndarray | None",
        *,
        context: "ExecutionContext",
    ) -> "tuple[np.ndarray, KernelStats]":
        # Direct-execute fallback for callers that bypass the dispatch
        # seam: select here, then run the chosen backend unchanged.  The
        # rewritten context carries a resolved autotune table so even
        # this path feeds observations back into the planner.
        chosen, _ = self.select_backend(compiled.opcode, a, b, c, context=context)
        impl = get_backend(chosen)
        table = context.autotune
        if table is None:
            table = default_autotune_table()
        return impl.execute(
            compiled, a, b, c,
            context=context.replace(backend=chosen, autotune=table),
        )


register_backend(AutoBackend())
