"""The planner: rank capable backends for one launch, cold or refined.

Given ``(opcode, shape, ring, operand density)`` the :class:`Planner`
produces a :class:`DispatchPlan` — every *capable* registered backend
(capability filtering replaces the sparse backend's old execute-time
probing), ranked by expected wall time.  Cold, the expectation is the
substrate-calibrated model (:mod:`repro.timing.backend_cost`); once the
:class:`~repro.plan.autotune.AutotuneTable` holds an observation for a
backend's bucket, the observed time wins.

One deliberate wrinkle: **bounded exploration**.  The calibrated model's
residual error near the sparse/dense crossover is about
:data:`MODEL_ERROR_BAND`; inside that band the model's ordering is a coin
toss, so once the ranked-best backend has an observation, the planner
promotes the cheapest still-*unobserved* candidate whose *model* price
ties the best's *model* price within the band both ways (model-vs-model:
the band describes the model's residual, so the comparison stays
meaningful even when the substrate runs systematically faster or slower
than the model's absolute scale).  ``plan.probe`` marks any launch handed
to an unmeasured backend while a measured alternative exists — whether by
promotion or because the model outranked a slow observation outright.
Each candidate is promoted at most once per bucket: after its launch both
sides carry real measurements and the ranking is purely empirical.

The symmetric case is the **re-probe**: when a backend the model prefers
*beyond* the band has lost on measurement, but its bucket holds fewer
than :data:`~repro.plan.autotune.REPROBE_OBSERVATIONS` samples, the loss
is not yet trusted — one scheduling burst can poison a fresh bucket's
best time, and pure best-observed exploitation would never re-measure the
victim.  Re-probe launches also carry ``plan.probe``; each one adds a
sample, so the suspicion self-extinguishes after a bounded number of
launches whether or not the model turns out to be right.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.backends.base import capable_backends, get_backend
from repro.compile.lower import resolve_opcode
from repro.runtime.api import RuntimeError_
from repro.timing.backend_cost import LaunchSpec, estimate

from repro.plan.autotune import (
    REPROBE_OBSERVATIONS,
    AutotuneTable,
    default_autotune_table,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.semiring import Semiring
    from repro.isa.opcodes import MmoOpcode

__all__ = [
    "DispatchPlan",
    "MODEL_ERROR_BAND",
    "PlanCandidate",
    "PlanError",
    "Planner",
    "crossover_density",
    "planner_order",
]

#: Multiplicative residual band of the calibrated cost model near the
#: sparse/dense crossover (worst observed mispick cost during fitting).
#: Model margins inside this band are treated as ties worth one probe.
MODEL_ERROR_BAND = 1.35


class PlanError(RuntimeError_):
    """No capable backend, or an otherwise unplannable launch."""


@dataclasses.dataclass(frozen=True)
class PlanCandidate:
    """One backend's expected price for the launch.

    ``source`` is ``"observed"`` when the autotune table priced it,
    ``"model"`` when the cold cost model did.
    """

    backend: str
    cost_s: float
    source: str


@dataclasses.dataclass(frozen=True)
class DispatchPlan:
    """A ranked backend order for one concrete launch.

    ``candidates[0]`` is the choice; ``probe`` marks it as an exploration
    launch — the chosen backend is unmeasured (or measured so little that
    its loss contradicts a decisive model preference) while a measured
    alternative exists, so this launch buys a measurement.

    ``breaker_skipped`` names backends the dispatching context's circuit
    breakers removed from the ranking (always empty on the planner's own
    cached output — health filtering happens per dispatch, after the
    cache, so a sick backend never poisons the memoised plan).
    """

    opcode: str
    ring: str
    shape: tuple[int, int, int]
    density_a: float
    density_b: float
    candidates: tuple[PlanCandidate, ...]
    probe: bool = False
    breaker_skipped: tuple[str, ...] = ()

    @property
    def best(self) -> PlanCandidate:
        return self.candidates[0]

    @property
    def order(self) -> tuple[str, ...]:
        """Backend names in ranked order (what a fallback chain walks)."""
        return tuple(c.backend for c in self.candidates)

    @property
    def refined(self) -> bool:
        """Whether any candidate was priced from observations."""
        return any(c.source == "observed" for c in self.candidates)


def _is_planning_backend(name: str) -> bool:
    """Planning backends (``"auto"``) never appear in their own plans."""
    return getattr(get_backend(name), "select_backend", None) is not None


class Planner:
    """Rank capable backends: cost-model-seeded, observation-refined.

    ``table=None`` consults the process-wide
    :func:`~repro.plan.autotune.default_autotune_table` at plan time;
    pass a private table to isolate a workload's observations.
    ``margin`` is the model-error band that funds promotion probes
    (set it to ``1.0`` to disable promotion entirely; model candidates
    that outrank observations on raw price are still chosen).
    """

    def __init__(
        self,
        table: AutotuneTable | None = None,
        *,
        margin: float = MODEL_ERROR_BAND,
    ) -> None:
        if margin < 1.0:
            raise PlanError(f"margin must be >= 1.0, got {margin}")
        self.table = table
        self.margin = margin

    def _table(self) -> AutotuneTable:
        return self.table if self.table is not None else default_autotune_table()

    def plan(
        self,
        ring: "Semiring | str | MmoOpcode",
        m: int,
        n: int,
        k: int,
        *,
        has_accumulator: bool = False,
        density_a: float = 1.0,
        density_b: float = 1.0,
    ) -> DispatchPlan:
        """The ranked :class:`DispatchPlan` for one launch."""
        opcode = resolve_opcode(ring)
        ring_name = opcode.semiring.name
        table = self._table()
        # Steady-state fast path: plans are memoised on the table against
        # its version, which moves only when an observation could change
        # a ranking (plans depend on the table solely through per-bucket
        # best_s values).  Keyed by the *exact* densities, not their bins
        # — near the crossover two same-bin launches can rank differently
        # cold, and the plan stamps the densities it was built from.
        plan_key = (
            opcode.name, m, n, k, density_a, density_b,
            has_accumulator, self.margin,
        )
        cached = table.cached_plan(plan_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        names = [
            name
            for name in capable_backends(
                ring_name, has_accumulator=has_accumulator
            )
            if not _is_planning_backend(name)
        ]
        if not names:
            raise PlanError(
                f"no capable backend for the {ring_name} ring"
                + (" with an accumulator" if has_accumulator else "")
            )
        spec = LaunchSpec(
            m, n, k,
            density_a=density_a, density_b=density_b,
            has_accumulator=has_accumulator,
        )
        model_costs = {name: estimate(name, spec) for name in names}
        observations = table.observed_many(
            names, opcode.name, m=m, n=n, k=k,
            density_a=density_a, density_b=density_b,
        )
        counts: dict[str, int] = {}
        candidates = []
        for name in names:
            observed = observations[name]
            if observed is not None:
                best_s, counts[name] = observed
                candidates.append(PlanCandidate(name, best_s, "observed"))
            else:
                counts[name] = 0
                candidates.append(
                    PlanCandidate(name, model_costs[name], "model")
                )
        ranked = sorted(candidates, key=lambda c: (c.cost_s, c.backend))
        reprobe = False
        if ranked[0].source == "observed":
            # Promotion: a model-vs-model tie, not observed seconds — the
            # band describes the model's own residual, so it must not
            # depend on the substrate's absolute speed, and a genuine
            # coin toss means the two model prices sit within the band of
            # each other *both ways*.
            best_model = model_costs[ranked[0].backend]
            unprobed = [
                c
                for c in ranked[1:]
                if c.source == "model"
                and model_costs[c.backend] <= self.margin * best_model
                and best_model <= self.margin * model_costs[c.backend]
            ]
            if unprobed:
                chosen = min(unprobed, key=lambda c: (c.cost_s, c.backend))
                ranked.remove(chosen)
                ranked.insert(0, chosen)
            else:
                # Re-probe: a candidate the model prefers *beyond* the
                # band lost on measurement, with too few samples for the
                # loss to be trusted — one scheduling burst can poison a
                # fresh bucket's best time, and pure best-observed
                # exploitation would then starve it of the
                # re-measurement that clears it.  Each re-probe adds a
                # sample, so the suspicion self-extinguishes at
                # REPROBE_OBSERVATIONS.
                suspects = [
                    c
                    for c in ranked[1:]
                    if c.source == "observed"
                    and counts[c.backend] < REPROBE_OBSERVATIONS
                    and self.margin * model_costs[c.backend] < best_model
                ]
                if suspects:
                    chosen = min(
                        suspects,
                        key=lambda c: (model_costs[c.backend], c.backend),
                    )
                    ranked.remove(chosen)
                    ranked.insert(0, chosen)
                    reprobe = True
        probe = reprobe or (
            ranked[0].source == "model"
            and any(c.source == "observed" for c in ranked[1:])
        )
        plan = DispatchPlan(
            opcode=opcode.name,
            ring=ring_name,
            shape=(m, n, k),
            density_a=density_a,
            density_b=density_b,
            candidates=tuple(ranked),
            probe=probe,
        )
        table.cache_plan(plan_key, plan)
        return plan


def crossover_density(
    m: int,
    n: int | None = None,
    k: int | None = None,
    *,
    sparse_backend: str = "sparse",
    dense_backend: str = "vectorized",
    tolerance: float = 1e-6,
) -> float:
    """The operand density where the two model costs break even.

    Below the returned density the sparse model is cheaper, above it the
    dense one — the planner's cold prediction of the paper's Fig-14
    crossover for this substrate.  ``0.0`` means the dense backend wins
    at every density, ``1.0`` that the sparse one does (both operands are
    assumed equally dense).  Bisection over ``[0, 1]``; both cost curves
    are monotone in density.
    """
    n = m if n is None else n
    k = m if k is None else k

    def gap(density: float) -> float:
        spec = LaunchSpec(m, n, k, density_a=density, density_b=density)
        return estimate(sparse_backend, spec) - estimate(dense_backend, spec)

    lo, hi = 0.0, 1.0
    if gap(lo) > 0.0:
        return 0.0
    if gap(hi) < 0.0:
        return 1.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if gap(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def planner_order(
    ring: "Semiring | str | MmoOpcode | None" = None,
    a: "np.ndarray | None" = None,
    b: "np.ndarray | None" = None,
    c: "np.ndarray | None" = None,
    *,
    table: AutotuneTable | None = None,
) -> tuple[str, ...]:
    """Ranked concrete backend names for a launch — the fallback order.

    The shape :class:`~repro.resilience.policy.FallbackChain` consumes:
    with operands, the real plan's order (capability-filtered, density
    aware); without them, a nominal dense square launch prices a static
    ordering over every non-planning backend.
    """
    planner = Planner(table)
    if ring is not None and a is not None and b is not None:
        from repro.sparse.density import estimate_density

        opcode = resolve_opcode(ring)
        m, k = a.shape
        n = b.shape[1]
        plan = planner.plan(
            opcode, m, n, k,
            has_accumulator=c is not None,
            density_a=estimate_density(a, opcode.semiring),
            density_b=estimate_density(b, opcode.semiring),
        )
        return plan.order
    if ring is not None:
        names = list(capable_backends(resolve_opcode(ring).semiring.name))
    else:
        from repro.backends.base import list_backends

        names = list(list_backends())
    spec = LaunchSpec(256, 256, 256)
    names = [name for name in names if not _is_planning_backend(name)]
    return tuple(sorted(names, key=lambda name: (estimate(name, spec), name)))
