"""repro — a full-system reproduction of SIMD² (ISCA 2022).

SIMD² generalises matrix-multiplication units to nine semiring-like matrix
operations (``D = C ⊕ (A ⊗ B)``).  This package provides:

- :mod:`repro.core` — the semiring algebra and the vectorised oracle,
- :mod:`repro.isa` — the SIMD² instruction set, encoder, and assembler,
- :mod:`repro.hw` — a functional emulator of SIMD² units inside a GPU SM,
- :mod:`repro.runtime` — the tile API, whole-matrix kernels, and closure loops,
- :mod:`repro.apps` — the paper's eight benchmark applications,
- :mod:`repro.sparse` — CSR, semiring spGEMM, and 2:4 structured sparsity,
- :mod:`repro.timing` — the analytic GPU performance model,
- :mod:`repro.hwmodel` — the area/power model behind Table 5,
- :mod:`repro.datasets` — synthetic workload generators,
- :mod:`repro.bench` — the experiment harness regenerating every table/figure.
"""

from repro.core import (
    SEMIRINGS,
    Semiring,
    SemiringError,
    get_semiring,
    mmo,
    semiring_names,
)

__version__ = "1.0.0"

__all__ = [
    "SEMIRINGS",
    "Semiring",
    "SemiringError",
    "get_semiring",
    "mmo",
    "semiring_names",
    "__version__",
]
