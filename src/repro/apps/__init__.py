"""The paper's eight benchmark applications, each with a classical
baseline and a SIMD²-ized (semiring closure / mmo) implementation."""

from repro.apps.floyd_warshall import FwStats, blocked_floyd_warshall, floyd_warshall
from repro.apps.apsp import ApspResult, apsp_baseline, apsp_simd2
from repro.apps.aplp import AplpResult, aplp_baseline, aplp_simd2, dag_longest_path_dp
from repro.apps.relpaths import (
    PathClosureResult,
    max_capacity_baseline,
    max_capacity_simd2,
    max_reliability_baseline,
    max_reliability_simd2,
    min_reliability_baseline,
    min_reliability_simd2,
)
from repro.apps.mst import MstResult, UnionFind, minimax_matrix, mst_baseline, mst_simd2
from repro.apps.gtc import GtcResult, gtc_baseline, gtc_simd2
from repro.apps.knn import KnnResult, knn_baseline, knn_simd2, select_k_smallest
from repro.apps.kmeans import KmeansResult, kmeans_baseline, kmeans_simd2
from repro.apps.linalg import InverseResult, newton_schulz_inverse
from repro.apps.scc import SccResult, scc_baseline, scc_simd2
from repro.apps.path_reconstruction import (
    RoutedPaths,
    extract_path,
    shortest_paths_with_successors,
)

__all__ = [
    "FwStats",
    "blocked_floyd_warshall",
    "floyd_warshall",
    "ApspResult",
    "apsp_baseline",
    "apsp_simd2",
    "AplpResult",
    "aplp_baseline",
    "aplp_simd2",
    "dag_longest_path_dp",
    "PathClosureResult",
    "max_capacity_baseline",
    "max_capacity_simd2",
    "max_reliability_baseline",
    "max_reliability_simd2",
    "min_reliability_baseline",
    "min_reliability_simd2",
    "MstResult",
    "UnionFind",
    "minimax_matrix",
    "mst_baseline",
    "mst_simd2",
    "GtcResult",
    "gtc_baseline",
    "gtc_simd2",
    "KnnResult",
    "knn_baseline",
    "knn_simd2",
    "select_k_smallest",
    "KmeansResult",
    "kmeans_baseline",
    "kmeans_simd2",
    "RoutedPaths",
    "extract_path",
    "shortest_paths_with_successors",
    "InverseResult",
    "newton_schulz_inverse",
    "SccResult",
    "scc_baseline",
    "scc_simd2",
]
