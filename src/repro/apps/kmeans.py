"""K-means clustering with the add-norm instruction.

The paper motivates ``plus-norm`` with "K-nearest neighbor and K-means
problems" (Table 1/§5.2): the assignment step of Lloyd's algorithm is a
pairwise squared-L2 distance computation — one add-norm mmo between the
point matrix and the centroid matrix — followed by an argmin.  The update
step (centroid means) stays on the scalar/vector cores, exactly the
heterogeneous split the SIMD² programming model is designed around.

Baseline: textbook Lloyd's with per-point distance loops.  Both versions
share the deterministic seeding and tie-breaking, so they converge to
identical assignments (distances agree bit-for-bit on fp16-exact inputs).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.runtime.kernels import mmo_tiled

__all__ = ["KmeansResult", "kmeans_baseline", "kmeans_simd2"]


@dataclasses.dataclass(frozen=True)
class KmeansResult:
    """Clustering outcome."""

    centroids: np.ndarray  # (k, dims)
    assignments: np.ndarray  # (num_points,)
    iterations: int
    converged: bool
    inertia: float  # sum of squared distances to assigned centroids


def _validate(points: np.ndarray, k: int, max_iterations: int) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    if not (1 <= k <= points.shape[0]):
        raise ValueError(f"k={k} out of range for {points.shape[0]} points")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    return points


def _seed_centroids(points: np.ndarray, k: int, seed: int) -> np.ndarray:
    """Deterministic seeding: k distinct points chosen by a seeded RNG."""
    rng = np.random.default_rng(seed)
    chosen = rng.choice(points.shape[0], size=k, replace=False)
    return points[np.sort(chosen)].copy()


def _update_step(
    points: np.ndarray, assignments: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Centroid means; empty clusters keep their previous centroid."""
    updated = centroids.copy()
    for cluster in range(centroids.shape[0]):
        members = points[assignments == cluster]
        if len(members):
            updated[cluster] = members.mean(axis=0)
    return updated


def _finish(
    points: np.ndarray,
    centroids: np.ndarray,
    assignments: np.ndarray,
    distances: np.ndarray,
    iterations: int,
    converged: bool,
) -> KmeansResult:
    inertia = float(distances[np.arange(len(points)), assignments].sum())
    return KmeansResult(
        centroids=centroids,
        assignments=assignments,
        iterations=iterations,
        converged=converged,
        inertia=inertia,
    )


def kmeans_baseline(
    points: np.ndarray, k: int, *, seed: int = 0, max_iterations: int = 50
) -> KmeansResult:
    """Lloyd's algorithm with explicit per-point distance loops."""
    points = _validate(points, k, max_iterations)
    p16 = points.astype(np.float16).astype(np.float32)
    centroids = _seed_centroids(points, k, seed)
    assignments = np.zeros(len(points), dtype=np.int64)
    distances = np.zeros((len(points), k), dtype=np.float32)
    converged = False
    iterations = 0
    for _ in range(max_iterations):
        c16 = centroids.astype(np.float16).astype(np.float32)
        for i in range(len(points)):
            diff = p16[i][None, :] - c16
            distances[i] = np.sum(diff * diff, axis=1, dtype=np.float32)
        new_assignments = distances.argmin(axis=1)
        iterations += 1
        if np.array_equal(new_assignments, assignments) and iterations > 1:
            converged = True
            break
        assignments = new_assignments
        centroids = _update_step(points, assignments, centroids)
    return _finish(points, centroids, assignments, distances, iterations, converged)


def kmeans_simd2(
    points: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    max_iterations: int = 50,
    backend: str | None = None,
) -> KmeansResult:
    """Lloyd's algorithm with the assignment step as one add-norm mmo."""
    points = _validate(points, k, max_iterations)
    centroids = _seed_centroids(points, k, seed)
    assignments = np.zeros(len(points), dtype=np.int64)
    distances = np.zeros((len(points), k), dtype=np.float32)
    converged = False
    iterations = 0
    for _ in range(max_iterations):
        # One whole-matrix plus-norm mmo: points (n×d) ⊗⊕ centroidsᵀ (d×k).
        distances, _ = mmo_tiled("plus-norm", points, centroids.T, backend=backend)
        new_assignments = distances.argmin(axis=1)
        iterations += 1
        if np.array_equal(new_assignments, assignments) and iterations > 1:
            converged = True
            break
        assignments = new_assignments
        centroids = _update_step(points, assignments, centroids)
    return _finish(points, centroids, assignments, distances, iterations, converged)
