"""The transitive-closure path family: MaxCP, MaxRP, MinRP.

Three of the paper's applications share the same shape — an all-pairs
closure under a non-plus semiring — and share the same baseline, CUDA-FW
(a plain Floyd–Warshall kernel), with only the update operators swapped:

- **Maximum Capacity Path (MaxCP)**, max-min: the capacity of a path is
  the minimum edge capacity along it; take the best path.
- **Maximum Reliability Path (MaxRP)**, max-mul: the reliability of a
  path is the product of its edge reliabilities (in (0, 1]); maximise it.
- **Minimum Reliability Path (MinRP)**, min-mul: minimise the product.
  Defined on DAGs: on cyclic graphs with sub-unit weights the infimum over
  walks is 0 and no fixpoint exists, so baseline and closure would compute
  different (both arbitrary) quantities.

The SIMD² versions invoke the corresponding closure with the max-min,
max-mul and min-mul mmo instructions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.floyd_warshall import FwStats, floyd_warshall
from repro.core.registry import get_semiring
from repro.runtime.closure import ClosureResult, closure

__all__ = [
    "PathClosureResult",
    "max_capacity_baseline",
    "max_capacity_simd2",
    "max_reliability_baseline",
    "max_reliability_simd2",
    "min_reliability_baseline",
    "min_reliability_simd2",
]


@dataclasses.dataclass(frozen=True)
class PathClosureResult:
    """Closure matrix plus algorithm structure."""

    values: np.ndarray
    ring_name: str
    fw_stats: FwStats | None = None
    closure_result: ClosureResult | None = None


def _validated(adjacency: np.ndarray, ring_name: str) -> np.ndarray:
    ring = get_semiring(ring_name)
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if ring_name == "min-mul":
        finite_offdiag = np.isfinite(adjacency)
        np.fill_diagonal(finite_offdiag, False)
        if np.any(np.tril(finite_offdiag)):
            raise ValueError(
                "min-mul (MinRP) requires a topologically ordered DAG; "
                "cyclic graphs have no minimum-reliability fixpoint"
            )
    return adjacency


def _baseline(adjacency: np.ndarray, ring_name: str) -> PathClosureResult:
    adjacency = _validated(adjacency, ring_name)
    values, stats = floyd_warshall(ring_name, adjacency)
    return PathClosureResult(values=values, ring_name=ring_name, fw_stats=stats)


def _simd2(
    adjacency: np.ndarray,
    ring_name: str,
    *,
    method: str,
    convergence_check: bool,
    backend: str | None,
    max_iterations: int | None,
) -> PathClosureResult:
    adjacency = _validated(adjacency, ring_name)
    result = closure(
        ring_name,
        adjacency,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
    return PathClosureResult(
        values=result.matrix, ring_name=ring_name, closure_result=result
    )


def max_capacity_baseline(adjacency: np.ndarray) -> PathClosureResult:
    """CUDA-FW with max-min updates (adjacency: -inf non-edges, +inf diagonal)."""
    return _baseline(adjacency, "max-min")


def max_capacity_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> PathClosureResult:
    """SIMD² MaxCP via the max-min instruction."""
    return _simd2(
        adjacency,
        "max-min",
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )


def max_reliability_baseline(adjacency: np.ndarray) -> PathClosureResult:
    """CUDA-FW with max-mul updates (adjacency: -inf non-edges, 1 diagonal)."""
    return _baseline(adjacency, "max-mul")


def max_reliability_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> PathClosureResult:
    """SIMD² MaxRP via the max-mul instruction."""
    return _simd2(
        adjacency,
        "max-mul",
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )


def min_reliability_baseline(adjacency: np.ndarray) -> PathClosureResult:
    """CUDA-FW with min-mul updates on a DAG (+inf non-edges, 1 diagonal)."""
    return _baseline(adjacency, "min-mul")


def min_reliability_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> PathClosureResult:
    """SIMD² MinRP via the min-mul instruction."""
    return _simd2(
        adjacency,
        "min-mul",
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
