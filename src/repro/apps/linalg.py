"""Matrix inversion on the mma instruction — Table 1's other plus-mul row.

The paper's Table 1 lists "Matrix Multiplications, Matrix Inverse" as the
plus-mul applications.  Direct factorisations are control-heavy; the
MXU-friendly method is **Newton–Schulz iteration**,

    X_{t+1} = X_t (2I − A X_t),

which is nothing but a chain of mma operations (two per step) and
converges quadratically once ``‖I − A X₀‖ < 1`` — achieved by the standard
scaling ``X₀ = Aᵀ / (‖A‖₁ ‖A‖∞)``.  Every multiplication runs through the
SIMD² plus-mul kernel with its fp16-in/fp32-out datapath, so the achieved
residual floor is itself a measurement of the datapath's accuracy.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.runtime.kernels import mmo_tiled

__all__ = ["InverseResult", "newton_schulz_inverse"]


@dataclasses.dataclass(frozen=True)
class InverseResult:
    """Outcome of the Newton–Schulz iteration."""

    inverse: np.ndarray
    iterations: int
    converged: bool
    residual: float  # ‖I − A·X‖_max at exit


def _mm(a: np.ndarray, b: np.ndarray, *, backend: str | None) -> np.ndarray:
    result, _ = mmo_tiled("plus-mul", a, b, backend=backend)
    return result


def newton_schulz_inverse(
    matrix: np.ndarray,
    *,
    tolerance: float = 1e-3,
    max_iterations: int = 50,
    backend: str | None = None,
) -> InverseResult:
    """Invert a well-conditioned square matrix with mma chains.

    Raises for singular/badly scaled inputs the iteration cannot handle
    (residual diverging).  The reachable ``tolerance`` is bounded by the
    fp16 input quantisation — around 1e-3 for well-conditioned matrices.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"need a square matrix, got shape {matrix.shape}")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")
    n = matrix.shape[0]
    identity = np.eye(n, dtype=np.float32)

    norm_1 = np.abs(matrix).sum(axis=0).max()
    norm_inf = np.abs(matrix).sum(axis=1).max()
    if norm_1 == 0 or norm_inf == 0:
        raise ValueError("matrix is zero")
    x = (matrix.T / (norm_1 * norm_inf)).astype(np.float32)

    residual = np.inf
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        ax = _mm(matrix, x, backend=backend)
        residual_now = float(np.max(np.abs(identity - ax)))
        if not np.isfinite(residual_now) or residual_now > 1e6:
            raise ValueError(
                "Newton–Schulz diverged; the matrix is singular or too "
                "badly conditioned for the fp16 datapath"
            )
        if residual_now <= tolerance:
            residual = residual_now
            converged = True
            break
        # X ← X (2I − A X): one subtraction pass + one mma.
        correction = 2.0 * identity - ax
        x = _mm(x, correction, backend=backend)
        residual = residual_now
        iterations += 1

    return InverseResult(
        inverse=x, iterations=iterations, converged=converged, residual=residual
    )
