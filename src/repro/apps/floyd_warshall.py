"""Floyd–Warshall-style all-pairs closures — the paper's GPU baselines.

The paper's baselines for the path-problem family are Floyd–Warshall
variants: plain CUDA-FW for MaxCP/MaxRP/MinRP and the phase-based *tiled*
Floyd–Warshall of ECL-APSP for APSP/APLP.  Both are reimplemented here from
scratch over arbitrary idempotent semirings:

- :func:`floyd_warshall` — the classic triple loop, vectorised per
  intermediate vertex;
- :func:`blocked_floyd_warshall` — the three-phase tiled formulation
  (diagonal block, row/column panels, remaining blocks), which is also the
  source of the baseline's *sequential phase structure* that the timing
  model charges for.

Blocked FW requires an idempotent ``⊕`` (min/max/or); both functions check.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError

__all__ = ["FwStats", "floyd_warshall", "blocked_floyd_warshall"]

_IDEMPOTENT_RINGS = {
    "min-plus",
    "max-plus",
    "min-mul",
    "max-mul",
    "min-max",
    "max-min",
    "or-and",
}


@dataclasses.dataclass(frozen=True)
class FwStats:
    """Work/structure statistics of one Floyd–Warshall run.

    ``sequential_steps`` is the length of the dependency chain — the
    number of phases that must run one after another (the property that
    limits GPU utilisation of the baseline and motivates SIMD²).
    """

    num_vertices: int
    block: int
    sequential_steps: int
    element_updates: int


def _check_ring(ring: Semiring) -> Semiring:
    if ring.name not in _IDEMPOTENT_RINGS:
        raise SemiringError(
            f"Floyd–Warshall requires an idempotent ⊕; semiring {ring.name!r} "
            "is not supported"
        )
    return ring


def _square_matrix(matrix: np.ndarray, ring: Semiring) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=ring.output_dtype).copy()
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SemiringError(f"Floyd–Warshall needs a square matrix, got {matrix.shape}")
    return matrix


def _two_hop(ring: Semiring, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left ⊗ right`` where a ⊕-identity leg means "no path" and loses ⊕.

    This guards against IEEE artefacts on identity-encoded non-edges, e.g.
    ``inf + (-inf) = nan`` or ``(-inf)·(-inf) = +inf`` overtaking a max.
    """
    with np.errstate(invalid="ignore"):
        through = ring.otimes(left, right)
    through = np.asarray(through, dtype=ring.output_dtype)
    if not ring.is_boolean():
        identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)
        missing = (left == identity) | (right == identity) | np.isnan(through)
        np.copyto(through, identity, where=missing)
    return through


def floyd_warshall(ring: Semiring | str, adjacency: np.ndarray) -> tuple[np.ndarray, FwStats]:
    """Classic FW closure: ``D[i,j] ← D[i,j] ⊕ (D[i,k] ⊗ D[k,j])`` for all k.

    The input diagonal should carry the problem's "self" value (0 for
    min-plus, 1 for the mul rings, True for or-and, ±inf for capacity).
    """
    ring = _check_ring(get_semiring(ring))
    dist = _square_matrix(adjacency, ring)
    n = dist.shape[0]
    for k in range(n):
        through_k = _two_hop(ring, dist[:, k : k + 1], dist[k : k + 1, :])
        dist = np.asarray(ring.oplus(dist, through_k), dtype=ring.output_dtype)
    stats = FwStats(
        num_vertices=n, block=1, sequential_steps=n, element_updates=n * n * n
    )
    return dist, stats


def blocked_floyd_warshall(
    ring: Semiring | str, adjacency: np.ndarray, *, block: int = 16
) -> tuple[np.ndarray, FwStats]:
    """Three-phase tiled FW (the ECL-APSP structure), over any idempotent ring.

    Per block-diagonal step ``kb``: (1) close the diagonal block, (2) update
    the row and column panels through it, (3) rank-``block`` update of every
    remaining block.  Phases within one ``kb`` and the ``kb`` steps
    themselves are sequentially dependent — 3·(n/block) sequential phases.
    """
    ring = _check_ring(get_semiring(ring))
    if block <= 0:
        raise SemiringError(f"block must be positive, got {block}")
    dist = _square_matrix(adjacency, ring)
    n = dist.shape[0]
    if n % block:
        # Pad to a block multiple with the ⊕ identity (no new paths).
        padded = int(np.ceil(n / block)) * block
        grown = np.full((padded, padded), ring.oplus_identity, dtype=ring.output_dtype)
        grown[:n, :n] = dist
        dist = grown
    nb = dist.shape[0] // block

    def rank_block_update(c_i, c_j, a_i, a_j, b_i, b_j) -> None:
        """dist[C] ← dist[C] ⊕ (dist[A] ⊗ dist[B]) for block coordinates."""
        rows = slice(c_i * block, (c_i + 1) * block)
        cols = slice(c_j * block, (c_j + 1) * block)
        a_rows = slice(a_i * block, (a_i + 1) * block)
        a_cols = slice(a_j * block, (a_j + 1) * block)
        b_rows = slice(b_i * block, (b_i + 1) * block)
        b_cols = slice(b_j * block, (b_j + 1) * block)
        c_block = dist[rows, cols]
        a_block = dist[a_rows, a_cols]
        b_block = dist[b_rows, b_cols]
        for k in range(block):
            through = _two_hop(ring, a_block[:, k : k + 1], b_block[k : k + 1, :])
            c_block = np.asarray(ring.oplus(c_block, through), dtype=ring.output_dtype)
            if (a_i, a_j) == (c_i, c_j):
                a_block = c_block
            if (b_i, b_j) == (c_i, c_j):
                b_block = c_block
        dist[rows, cols] = c_block

    for kb in range(nb):
        # Phase 1: the diagonal block closes over itself.
        rank_block_update(kb, kb, kb, kb, kb, kb)
        # Phase 2: panels through the diagonal block.
        for j in range(nb):
            if j != kb:
                rank_block_update(kb, j, kb, kb, kb, j)  # row panel
                rank_block_update(j, kb, j, kb, kb, kb)  # column panel
        # Phase 3: everything else gets a pure mmo update.
        for i in range(nb):
            if i == kb:
                continue
            for j in range(nb):
                if j == kb:
                    continue
                rank_block_update(i, j, i, kb, kb, j)

    stats = FwStats(
        num_vertices=n,
        block=block,
        sequential_steps=3 * nb,
        element_updates=dist.shape[0] ** 3,
    )
    return dist[:n, :n].copy(), stats
