"""Graph Transitive Closure — the paper's or-and application.

Baseline: breadth-first search from every vertex over adjacency lists (the
role cuBool's traversal kernels play).  SIMD² version: boolean closure via
the or-and mmo instruction.  Both produce the reflexive-transitive
reachability matrix.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from repro.runtime.closure import ClosureResult, closure

__all__ = ["GtcResult", "gtc_baseline", "gtc_simd2"]


@dataclasses.dataclass(frozen=True)
class GtcResult:
    """Reachability matrix plus algorithm statistics."""

    reachable: np.ndarray
    vertices_visited: int = 0
    closure_result: ClosureResult | None = None


def _validate_boolean(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if adjacency.dtype != np.dtype(bool):
        raise ValueError(f"adjacency must be boolean, got dtype {adjacency.dtype}")
    return adjacency


def gtc_baseline(adjacency: np.ndarray) -> GtcResult:
    """BFS from every source over adjacency lists."""
    adjacency = _validate_boolean(adjacency)
    n = adjacency.shape[0]
    neighbours = [np.flatnonzero(adjacency[v]) for v in range(n)]
    reachable = np.zeros((n, n), dtype=bool)
    visited_total = 0
    for source in range(n):
        seen = np.zeros(n, dtype=bool)
        seen[source] = True
        queue = collections.deque([source])
        while queue:
            vertex = queue.popleft()
            visited_total += 1
            for nxt in neighbours[vertex]:
                if not seen[nxt]:
                    seen[nxt] = True
                    queue.append(nxt)
        reachable[source] = seen
    return GtcResult(reachable=reachable, vertices_visited=visited_total)


def gtc_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> GtcResult:
    """SIMD² GTC: or-and closure of the reflexive adjacency matrix."""
    adjacency = _validate_boolean(adjacency).copy()
    np.fill_diagonal(adjacency, True)  # reflexive closure, as the paper's GTC
    result = closure(
        "or-and",
        adjacency,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
    return GtcResult(reachable=result.matrix, closure_result=result)
