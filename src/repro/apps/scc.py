"""Strongly Connected Components via or-and closures.

A natural companion to GTC in the paper's graph-analytics family: with the
reachability closure ``R`` in hand, vertices ``i`` and ``j`` are strongly
connected iff ``R[i, j] ∧ R[j, i]`` — so SCC costs one or-and closure plus
an element-wise AND with its transpose (a CUDA-core pass), the same
mmo-plus-elementwise split as every other SIMD² application.

Baseline: Kosaraju's algorithm from scratch — iterative DFS finish order
on the graph, then reverse-graph DFS in that order.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.runtime.closure import ClosureResult, closure

__all__ = ["SccResult", "scc_baseline", "scc_simd2"]


@dataclasses.dataclass(frozen=True)
class SccResult:
    """Component labels (canonical: smallest member index per component)."""

    labels: np.ndarray  # (n,) int64
    num_components: int
    closure_result: ClosureResult | None = None


def _validate(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if adjacency.dtype != np.dtype(bool):
        raise ValueError(f"adjacency must be boolean, got dtype {adjacency.dtype}")
    return adjacency


def _canonical_labels(component_of: list[int]) -> SccResult:
    """Relabel so each component's id is its smallest vertex index."""
    n = len(component_of)
    smallest: dict[int, int] = {}
    for vertex in range(n):
        comp = component_of[vertex]
        smallest.setdefault(comp, vertex)
    labels = np.array([smallest[component_of[v]] for v in range(n)], dtype=np.int64)
    return SccResult(labels=labels, num_components=len(smallest))


def scc_baseline(adjacency: np.ndarray) -> SccResult:
    """Kosaraju's two-pass DFS (iterative, from scratch)."""
    adjacency = _validate(adjacency)
    n = adjacency.shape[0]
    out_edges = [np.flatnonzero(adjacency[v]) for v in range(n)]
    in_edges = [np.flatnonzero(adjacency[:, v]) for v in range(n)]

    # Pass 1: vertices by decreasing DFS finish time.
    visited = np.zeros(n, dtype=bool)
    finish_order: list[int] = []
    for start in range(n):
        if visited[start]:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        visited[start] = True
        while stack:
            vertex, edge_index = stack[-1]
            if edge_index < len(out_edges[vertex]):
                stack[-1] = (vertex, edge_index + 1)
                nxt = int(out_edges[vertex][edge_index])
                if not visited[nxt]:
                    visited[nxt] = True
                    stack.append((nxt, 0))
            else:
                stack.pop()
                finish_order.append(vertex)

    # Pass 2: reverse-graph DFS in reverse finish order.
    component_of = [-1] * n
    current = -1
    for start in reversed(finish_order):
        if component_of[start] != -1:
            continue
        current += 1
        stack2 = [start]
        component_of[start] = current
        while stack2:
            vertex = stack2.pop()
            for nxt in in_edges[vertex]:
                nxt = int(nxt)
                if component_of[nxt] == -1:
                    component_of[nxt] = current
                    stack2.append(nxt)

    return _canonical_labels(component_of)


def scc_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    backend: str | None = None,
) -> SccResult:
    """SCC from one or-and closure: ``strong = R ∧ Rᵀ``."""
    adjacency = _validate(adjacency).copy()
    np.fill_diagonal(adjacency, True)
    result = closure("or-and", adjacency, method=method, backend=backend)
    strong = result.matrix & result.matrix.T
    # The component of v is the smallest u with strong[v, u].
    labels = np.argmax(strong, axis=1).astype(np.int64)
    outcome = _canonical_labels([int(label) for label in labels])
    return SccResult(
        labels=outcome.labels,
        num_components=outcome.num_components,
        closure_result=result,
    )
