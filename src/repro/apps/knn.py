"""K-Nearest Neighbours — the paper's add-norm (plus-norm) application.

Baseline: the KNN-CUDA structure — per-query squared-L2 distances computed
with an explicit difference-square-accumulate loop, then a top-k selection.
SIMD² version: the pairwise distance matrix is produced by the plus-norm
mmo (one ``D = C + Σ (A-B)²`` per tile pair) followed by the same
selection.  Neighbour ordering breaks ties by index so both versions are
deterministic and comparable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.runtime.kernels import KernelStats, mmo_tiled

__all__ = ["KnnResult", "knn_baseline", "knn_simd2", "select_k_smallest"]


@dataclasses.dataclass(frozen=True)
class KnnResult:
    """Indices and distances of the k nearest references per query."""

    indices: np.ndarray  # (num_queries, k) reference indices
    distances: np.ndarray  # (num_queries, k) squared L2 distances
    kernel_stats: KernelStats | None = None


def _validate(queries: np.ndarray, references: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    queries = np.asarray(queries, dtype=np.float64)
    references = np.asarray(references, dtype=np.float64)
    if queries.ndim != 2 or references.ndim != 2:
        raise ValueError("queries and references must be 2-D point arrays")
    if queries.shape[1] != references.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries {queries.shape[1]}-d, "
            f"references {references.shape[1]}-d"
        )
    if not (1 <= k <= references.shape[0]):
        raise ValueError(
            f"k={k} out of range for {references.shape[0]} reference points"
        )
    return queries, references


def select_k_smallest(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row k smallest entries, ties broken by lower index.

    Returns ``(indices, values)`` each of shape ``(rows, k)``, sorted
    ascending within each row.
    """
    order = np.argsort(distances, axis=1, kind="stable")[:, :k]
    values = np.take_along_axis(distances, order, axis=1)
    return order, values


def knn_baseline(queries: np.ndarray, references: np.ndarray, k: int) -> KnnResult:
    """Explicit difference-square-accumulate distances + top-k selection."""
    queries, references = _validate(queries, references, k)
    num_queries = queries.shape[0]
    num_refs = references.shape[0]
    q16 = queries.astype(np.float16).astype(np.float32)
    r16 = references.astype(np.float16).astype(np.float32)
    distances = np.zeros((num_queries, num_refs), dtype=np.float32)
    for qi in range(num_queries):
        diff = q16[qi][None, :] - r16  # (num_refs, dims)
        distances[qi] = np.sum(diff * diff, axis=1, dtype=np.float32)
    indices, values = select_k_smallest(distances, k)
    return KnnResult(indices=indices, distances=values)


def knn_simd2(
    queries: np.ndarray,
    references: np.ndarray,
    k: int,
    *,
    backend: str | None = None,
) -> KnnResult:
    """SIMD² KNN: plus-norm mmo distance matrix + top-k selection.

    The reference set is laid out one point per column (the mmo ``B``
    operand), exactly how the paper's kernel consumes it.
    """
    queries, references = _validate(queries, references, k)
    distances, stats = mmo_tiled(
        "plus-norm", queries, references.T, backend=backend
    )
    indices, values = select_k_smallest(distances, k)
    return KnnResult(indices=indices, distances=values, kernel_stats=stats)
