"""Minimum Spanning Tree — the paper's min-max application.

Baseline: Kruskal's algorithm with a from-scratch union-find (the
"CUDA MST" baseline is Kruskal-based; the paper notes its O(E log E)
complexity).  SIMD² version: the min-max closure computes the *minimax*
(bottleneck) distance between every vertex pair; with distinct edge
weights, an edge belongs to the unique MST exactly when its weight equals
the minimax distance between its endpoints — the classic cycle-property
characterisation, which maps MST onto the min-max mmo instruction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.runtime.closure import ClosureResult, closure

__all__ = ["MstResult", "UnionFind", "mst_baseline", "mst_simd2", "minimax_matrix"]


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


@dataclasses.dataclass(frozen=True)
class MstResult:
    """Edges of the minimum spanning tree/forest, plus statistics."""

    edges: frozenset[tuple[int, int]]
    total_weight: float
    closure_result: ClosureResult | None = None
    edges_examined: int = 0


def _validate_weights(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"weight matrix must be square, got {weights.shape}")
    finite = np.isfinite(weights)
    np.fill_diagonal(finite, True)
    if not np.array_equal(weights, weights.T):
        raise ValueError("MST needs an undirected (symmetric) weight matrix")
    return weights


def _edge_list(weights: np.ndarray) -> list[tuple[float, int, int]]:
    n = weights.shape[0]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if np.isfinite(weights[u, v]):
                edges.append((float(weights[u, v]), u, v))
    return edges


def mst_baseline(weights: np.ndarray) -> MstResult:
    """Kruskal's algorithm: sort edges, grow a forest with union-find."""
    weights = _validate_weights(weights)
    edges = sorted(_edge_list(weights))
    uf = UnionFind(max(weights.shape[0], 1))
    chosen: set[tuple[int, int]] = set()
    total = 0.0
    for weight, u, v in edges:
        if uf.union(u, v):
            chosen.add((u, v))
            total += weight
    return MstResult(
        edges=frozenset(chosen), total_weight=total, edges_examined=len(edges)
    )


def minimax_matrix(
    weights: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> ClosureResult:
    """Min-max closure: ``B[u, v]`` = bottleneck (minimax) distance.

    Encoding: non-edges ``+inf``, diagonal ``-inf`` (the empty path has no
    maximum edge).
    """
    weights = _validate_weights(weights)
    encoded = np.where(np.isfinite(weights), weights, np.inf)
    np.fill_diagonal(encoded, -np.inf)
    return closure(
        "min-max",
        encoded,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )


def mst_simd2(
    weights: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> MstResult:
    """SIMD² MST: select edges whose weight equals the minimax distance.

    Requires distinct edge weights (the MST is then unique); raises
    otherwise, because the cycle-property test would keep tied edges from
    both sides of a cycle.
    """
    weights = _validate_weights(weights)
    edge_weights = [w for (w, _, _) in _edge_list(weights)]
    if len(set(edge_weights)) != len(edge_weights):
        raise ValueError("mst_simd2 requires distinct edge weights")

    result = minimax_matrix(
        weights,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
    bottleneck = result.matrix
    chosen: set[tuple[int, int]] = set()
    total = 0.0
    n = weights.shape[0]
    for u in range(n):
        for v in range(u + 1, n):
            w = weights[u, v]
            if np.isfinite(w) and np.float32(w) == bottleneck[u, v]:
                chosen.add((u, v))
                total += float(w)
    return MstResult(
        edges=frozenset(chosen),
        total_weight=total,
        closure_result=result,
        edges_examined=len(edge_weights),
    )
