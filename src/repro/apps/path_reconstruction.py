"""Reconstructing actual routes from semiring closures.

Closures produce optimal *values* (distances, capacities); routing
applications need the *paths*.  The standard technique pairs every
relaxation with a successor update: when going through ``k`` improves
``(i, j)``, record that the optimal route from ``i`` towards ``j`` now
starts with ``i``'s current first hop towards ``k``.  On SIMD² hardware
the successor update is an element-wise select on the comparison mask —
a CUDA-core kernel between mmos, exactly like the convergence check.

:func:`shortest_paths_with_successors` runs the min-plus Bellman-Ford
closure with successor tracking; :func:`extract_path` walks a successor
matrix into an explicit vertex sequence.  Tests verify every extracted
path exists in the graph and its length equals the closure distance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.ops import mmo

__all__ = ["RoutedPaths", "shortest_paths_with_successors", "extract_path"]


@dataclasses.dataclass(frozen=True)
class RoutedPaths:
    """Distances plus the successor matrix that encodes the routes."""

    distances: np.ndarray  # (n, n) fp32
    successors: np.ndarray  # (n, n) int64; -1 = unreachable / self
    iterations: int


def shortest_paths_with_successors(adjacency: np.ndarray) -> RoutedPaths:
    """Min-plus closure with per-relaxation successor tracking.

    ``adjacency`` uses the min-plus encoding (+inf non-edges, 0 diagonal).
    Successor semantics: ``successors[i, j]`` is the next vertex after
    ``i`` on an optimal i→j path (-1 when ``i == j`` or ``j`` is
    unreachable).
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if np.any(np.diag(adjacency) != 0.0):
        raise ValueError("min-plus adjacency must have a zero diagonal")
    n = adjacency.shape[0]

    distances = adjacency.astype(np.float32)
    successors = np.where(
        np.isfinite(adjacency) & ~np.eye(n, dtype=bool),
        np.arange(n)[None, :].repeat(n, axis=0),
        -1,
    ).astype(np.int64)

    iterations = 0
    for _ in range(n):
        # One Bellman-Ford relaxation as an mmo (distances ⊗ adjacency)...
        relaxed = mmo("min-plus", distances, adjacency, distances)
        improved = relaxed < distances
        if not improved.any():
            iterations += 1
            break
        # ...and the successor update as the element-wise select: where the
        # best route to j now goes through some k, the first hop towards j
        # becomes the first hop towards the best such k.
        through = distances[:, :, None] + adjacency.astype(np.float32)[None, :, :]
        best_k = np.argmin(through, axis=1)
        rows = np.arange(n)[:, None].repeat(n, axis=1)
        new_successors = successors[rows, best_k]
        successors = np.where(improved, new_successors, successors)
        distances = relaxed
        iterations += 1

    return RoutedPaths(distances=distances, successors=successors, iterations=iterations)


def extract_path(routed: RoutedPaths, source: int, target: int) -> list[int] | None:
    """The optimal vertex sequence source→target, or None if unreachable."""
    n = routed.successors.shape[0]
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError(f"endpoints ({source}, {target}) out of range for {n} vertices")
    if source == target:
        return [source]
    if not np.isfinite(routed.distances[source, target]):
        return None
    path = [source]
    current = source
    for _ in range(n):
        current = int(routed.successors[current, target])
        if current < 0:
            return None  # inconsistent successor matrix
        path.append(current)
        if current == target:
            return path
    return None  # cycle guard; cannot happen with non-negative weights
