"""All-Pairs Longest (Critical) Path on DAGs — the max-plus application.

Baseline: ECL-APSP "with reversed weights" as the paper describes —
equivalently, tiled Floyd–Warshall under the max-plus semiring, which is
well defined on DAGs (no positive cycles).  SIMD² version: max-plus
closure.  Entries are ``-inf`` for unreachable pairs and 0 on the diagonal.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.floyd_warshall import FwStats, blocked_floyd_warshall
from repro.runtime.closure import ClosureResult, closure

__all__ = ["AplpResult", "aplp_baseline", "aplp_simd2", "dag_longest_path_dp"]


@dataclasses.dataclass(frozen=True)
class AplpResult:
    """Critical-path length matrix plus algorithm structure."""

    lengths: np.ndarray
    fw_stats: FwStats | None = None
    closure_result: ClosureResult | None = None


def _validate_maxplus_adjacency(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if np.any(np.diag(adjacency) != 0.0):
        raise ValueError("max-plus adjacency must have a zero diagonal")
    finite = np.isfinite(adjacency)
    np.fill_diagonal(finite, False)
    if np.any(np.tril(finite)):
        raise ValueError(
            "expected a topologically ordered DAG (edges above the diagonal); "
            "longest paths are undefined on graphs with positive cycles"
        )
    return adjacency


def aplp_baseline(adjacency: np.ndarray, *, block: int = 16) -> AplpResult:
    """Tiled Floyd–Warshall under max-plus (the reversed-weight ECL-APSP)."""
    adjacency = _validate_maxplus_adjacency(adjacency)
    lengths, stats = blocked_floyd_warshall("max-plus", adjacency, block=block)
    return AplpResult(lengths=lengths, fw_stats=stats)


def dag_longest_path_dp(adjacency: np.ndarray) -> np.ndarray:
    """Textbook O(V·E) dynamic program over the topological order.

    An independent second oracle for tests: processes vertices in reverse
    topological order and relaxes outgoing edges.
    """
    adjacency = _validate_maxplus_adjacency(adjacency)
    n = adjacency.shape[0]
    lengths = np.full((n, n), -np.inf)
    np.fill_diagonal(lengths, 0.0)
    for src in range(n - 1, -1, -1):
        for dst in range(src + 1, n):
            weight = adjacency[src, dst]
            if np.isfinite(weight):
                candidate = weight + lengths[dst]
                lengths[src] = np.maximum(lengths[src], candidate)
    return lengths


def aplp_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> AplpResult:
    """SIMD² APLP: max-plus closure on the matrix unit."""
    adjacency = _validate_maxplus_adjacency(adjacency)
    result = closure(
        "max-plus",
        adjacency,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
    return AplpResult(lengths=result.matrix, closure_result=result)
