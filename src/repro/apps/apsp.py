"""All-Pairs Shortest Path (APSP) — the paper's min-plus application.

Baseline: the phase-based tiled Floyd–Warshall of ECL-APSP, reimplemented
in :mod:`repro.apps.floyd_warshall`.  SIMD² version: the Figure 7 host
loop — min-plus closure with Leyzorek squaring (or all-pairs Bellman-Ford)
and an optional convergence check.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.floyd_warshall import FwStats, blocked_floyd_warshall
from repro.runtime.closure import ClosureResult, closure

__all__ = ["ApspResult", "apsp_baseline", "apsp_simd2"]


@dataclasses.dataclass(frozen=True)
class ApspResult:
    """Distance matrix plus execution structure of the producing algorithm."""

    distances: np.ndarray
    fw_stats: FwStats | None = None
    closure_result: ClosureResult | None = None


def _validate_minplus_adjacency(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if np.any(np.diag(adjacency) != 0.0):
        raise ValueError("min-plus adjacency must have a zero diagonal")
    if np.any(adjacency < 0):
        raise ValueError("negative edge weights are not supported")
    return adjacency


def apsp_baseline(adjacency: np.ndarray, *, block: int = 16) -> ApspResult:
    """ECL-APSP-style tiled Floyd–Warshall."""
    adjacency = _validate_minplus_adjacency(adjacency)
    distances, stats = blocked_floyd_warshall("min-plus", adjacency, block=block)
    return ApspResult(distances=distances, fw_stats=stats)


def apsp_simd2(
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    backend: str | None = None,
    max_iterations: int | None = None,
) -> ApspResult:
    """SIMD² APSP: min-plus closure on the matrix unit."""
    adjacency = _validate_minplus_adjacency(adjacency)
    result = closure(
        "min-plus",
        adjacency,
        method=method,
        convergence_check=convergence_check,
        backend=backend,
        max_iterations=max_iterations,
    )
    return ApspResult(distances=result.matrix, closure_result=result)
