"""SIMD² programming model: tile API, whole-matrix kernels, closure loops."""

from repro.runtime.api import MatrixHandle, RuntimeError_, TileProgramBuilder
from repro.runtime.context import (
    ExecutionContext,
    default_context,
    resolve_context,
    use_context,
)
from repro.runtime.trace import LaunchRecord, ResilienceEvent, Trace, TraceSummary
from repro.runtime.kernels import (
    KernelStats,
    OperandValidationError,
    build_tile_mmo_program,
    execute_compiled,
    mmo_tiled,
    mmo_tiled_split_k,
)
from repro.runtime.closure import (
    ClosureResult,
    closure,
    matrices_equal,
    max_iterations_for,
)
from repro.runtime.host import HostClosureOutcome, HostEvent, HostRuntime
from repro.runtime.batched import BatchStats, batched_mmo
from repro.runtime.vector import VectorResult, reachable_from, sssp, vxm
from repro.runtime.multidevice import DeviceShare, mmo_tiled_multi_device

__all__ = [
    "MatrixHandle",
    "RuntimeError_",
    "TileProgramBuilder",
    "ExecutionContext",
    "default_context",
    "resolve_context",
    "use_context",
    "LaunchRecord",
    "ResilienceEvent",
    "Trace",
    "TraceSummary",
    "KernelStats",
    "OperandValidationError",
    "build_tile_mmo_program",
    "execute_compiled",
    "mmo_tiled",
    "mmo_tiled_split_k",
    "ClosureResult",
    "closure",
    "matrices_equal",
    "max_iterations_for",
    "HostClosureOutcome",
    "HostEvent",
    "HostRuntime",
    "BatchStats",
    "batched_mmo",
    "VectorResult",
    "reachable_from",
    "sssp",
    "vxm",
    "DeviceShare",
    "mmo_tiled_multi_device",
]
