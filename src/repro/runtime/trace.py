"""Per-launch observability: structured records of every mmo dispatch.

The paper's evaluation framework (Section 5.1) hinges on reconciling three
views of the same launch: the static tiling prediction (how many SIMD²
instructions *should* issue), the dynamic emulator counters (how many
*did*), and the timing model (what they cost).  This module gives that
reconciliation a durable shape: whenever an :class:`~repro.runtime.context.
ExecutionContext` carries a :class:`Trace`, the dispatch layer appends one
:class:`LaunchRecord` per kernel launch — opcode, shape, tile grid, wall
time, the backend that ran it, and every statistics object the launch
produced.  :class:`TraceSummary` folds a trace into the aggregate counters
the bench harness reports.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.hw.warp import ExecutionStats
    from repro.plan.planner import PlanCandidate
    from repro.runtime.kernels import KernelStats
    from repro.sparse.spgemm import SpgemmStats

__all__ = [
    "CompileRecord",
    "LaunchRecord",
    "PlanRecord",
    "ResilienceEvent",
    "Trace",
    "TraceSummary",
]


@dataclasses.dataclass(frozen=True)
class CompileRecord:
    """One pass through the compile seam, with its verification stats.

    Appended by the trace hook at ``post_compile`` — one record per
    compile *request*, whether the plan cache served it (``cache_hit``)
    or the launch paid for a fresh lowering.  The verification fields are
    read off the artifact's cached
    :class:`~repro.isa.verifier.VerificationReport`; ``verified`` is
    ``None`` for artifacts produced by backends that bypass the verified
    lowering path.
    """

    api: str
    backend: str
    opcode: str
    tiles: tuple[int, int, int]  # (tiles_m, tiles_n, tiles_k)
    cache_hit: bool
    verified: bool | None = None
    verifier_warnings: int = 0
    dead_stores: int = 0
    registers_used: int = 0
    shared_memory_bytes: int = 0
    deterministic: bool | None = None


@dataclasses.dataclass(frozen=True)
class ResilienceEvent:
    """One resilience-layer occurrence, as observed at the dispatch seam.

    ``kind`` is one of:

    - ``"fault_injected"`` — the context's fault plan corrupted an output,
      dropped a launch, or hard-failed a device;
    - ``"corruption_detected"`` — an ABFT checksum verification failed;
    - ``"retry"`` — a recovery policy relaunched after a failure;
    - ``"fallback"`` — a fallback chain degraded to another backend;
    - ``"device_failure"`` — a device was blacklisted by the partitioner;
    - ``"repartition"`` — multi-device work was redistributed across the
      surviving devices;
    - ``"watchdog"`` — the closure watchdog terminated an iteration;
    - ``"backend_failure"`` — a breaker-tracked context saw a transient
      failure on the named backend (feeds its circuit breaker);
    - ``"breaker_open"`` — a launch skipped a backend whose circuit
      breaker is open;
    - ``"brownout"`` — a budget-exhausted closure returned its partial
      fixpoint instead of raising (``on_budget="brownout"``).

    ``detail`` is human-readable; ``attempt``/``device_index``/
    ``launch_ordinal`` carry the structured coordinates when applicable.
    """

    kind: str
    api: str
    backend: str
    detail: str
    attempt: int = 0
    device_index: int | None = None
    launch_ordinal: int | None = None


@dataclasses.dataclass(frozen=True)
class PlanRecord:
    """One adaptive-dispatch decision, as surfaced through ``on_plan``.

    Appended by the trace hook whenever the dispatch seam consulted the
    planner (``backend="auto"``): ``backend`` is the concrete choice the
    launch ran on, ``candidates`` the full ranked
    :class:`~repro.plan.planner.PlanCandidate` tuple behind it.
    ``refined`` says at least one candidate was priced from autotune
    observations rather than the cold cost model; ``probe`` marks a
    bounded exploration pick (see :data:`repro.plan.MODEL_ERROR_BAND`);
    ``breaker_skipped`` names backends the context's circuit breakers
    removed from the ranking before the choice.
    """

    api: str
    backend: str
    ring: str
    opcode: str
    shape: tuple[int, int, int]  # (m, n, k)
    density_a: float
    density_b: float
    candidates: "tuple[PlanCandidate, ...]"
    refined: bool = False
    probe: bool = False
    breaker_skipped: tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class LaunchRecord:
    """One dispatched mmo launch, as observed at the backend seam.

    ``kernel_stats`` carries the full statistics bundle: the static tiling
    counts always, the dynamic :class:`~repro.hw.warp.ExecutionStats` when
    the emulate backend ran, and the
    :class:`~repro.sparse.spgemm.SpgemmStats` when the sparse backend ran.
    ``cycle_estimate`` is the timing model's price for the launch (total
    unit cycles from :func:`~repro.timing.cycles.kernel_cycle_estimate`).

    ``cache_hit`` reports the compilation half of the launch: ``True``
    when the plan cache served the compiled artifact (or a precompiled
    artifact was replayed), ``False`` when this launch paid for a fresh
    lowering, and ``None`` when no compilation happened at all (degenerate
    empty outputs, legacy ``run_mmo``-only backends).
    ``optimizer_removed`` counts the instructions
    :func:`repro.isa.optimizer.optimize_program` dropped from the
    artifact's warp program.
    """

    api: str  # entry point that launched: "mmo_tiled", "mmo_tiled_split_k", ...
    backend: str
    ring: str
    opcode: str
    shape: tuple[int, int, int]  # (m, n, k)
    tiles: tuple[int, int, int]  # (tiles_m, tiles_n, tiles_k)
    wall_time_s: float
    kernel_stats: "KernelStats"
    cycle_estimate: float
    cache_hit: bool | None = None
    optimizer_removed: int = 0

    @property
    def mmo_instructions(self) -> int:
        return self.kernel_stats.mmo_instructions

    @property
    def warp_programs(self) -> int:
        return self.kernel_stats.warp_programs

    @property
    def unit_ops(self) -> int:
        return self.kernel_stats.unit_ops

    @property
    def execution(self) -> "ExecutionStats | None":
        """Dynamic emulator counters (emulate backend only)."""
        return self.kernel_stats.execution

    @property
    def spgemm(self) -> "SpgemmStats | None":
        """spGEMM work counters (sparse backend only)."""
        return self.kernel_stats.spgemm


class Trace:
    """An append-only sink of :class:`LaunchRecord`\\ s and resilience events.

    Attach one to an execution context (``use_context(trace=Trace())``) and
    every launch under that context records itself here; the resilience
    layer (fault injector, ABFT verifier, recovery policies, watchdog)
    appends :class:`ResilienceEvent`\\ s alongside.

    Appends and reads take an internal lock, so one trace can sink
    records from concurrent launches (parallel multi-device bands, the
    kernel tier's worker threads) without losing entries; ``summary``,
    ``events_of`` and iteration observe a consistent snapshot.
    """

    def __init__(self) -> None:
        self.records: list[LaunchRecord] = []
        self.events: list[ResilienceEvent] = []
        self.compiles: list[CompileRecord] = []
        self.plans: list[PlanRecord] = []
        self._lock = threading.Lock()

    def record(self, launch: LaunchRecord) -> None:
        with self._lock:
            self.records.append(launch)

    def record_event(self, event: ResilienceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def record_compile(self, compile_record: CompileRecord) -> None:
        with self._lock:
            self.compiles.append(compile_record)

    def record_plan(self, plan_record: PlanRecord) -> None:
        with self._lock:
            self.plans.append(plan_record)

    def events_of(self, kind: str) -> list[ResilienceEvent]:
        """Every recorded event of one ``kind`` (see :class:`ResilienceEvent`)."""
        with self._lock:
            return [event for event in self.events if event.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
            self.events.clear()
            self.compiles.clear()
            self.plans.clear()

    def summary(self) -> "TraceSummary":
        with self._lock:
            records = list(self.records)
            events = tuple(self.events)
            compiles = tuple(self.compiles)
            plans = tuple(self.plans)
        return TraceSummary.from_records(records, events, compiles, plans)

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)

    def __iter__(self) -> Iterator[LaunchRecord]:
        with self._lock:
            return iter(tuple(self.records))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({len(self)} launches)"


@dataclasses.dataclass(frozen=True)
class TraceSummary:
    """Aggregate counters of a trace — what the bench harness reports."""

    launches: int
    by_backend: dict[str, int]
    by_ring: dict[str, int]
    mmo_instructions: int
    warp_programs: int
    unit_ops: int
    spgemm_products: int
    wall_time_s: float
    cycle_estimate: float
    cache_hits: int = 0
    cache_misses: int = 0
    optimizer_removed: int = 0
    #: Resilience-event counts by kind (``faults_injected`` etc. read it).
    by_event: dict[str, int] = dataclasses.field(default_factory=dict)
    #: Compile-seam traffic: requests observed, how many carried a passing
    #: verification report, and the verifier warnings across them.
    compile_requests: int = 0
    programs_verified: int = 0
    verifier_warnings: int = 0
    #: Adaptive-dispatch traffic: planner decisions observed, how many
    #: were priced from autotune observations, how many were exploration
    #: probes.
    plan_decisions: int = 0
    plans_refined: int = 0
    plan_probes: int = 0

    @property
    def resilience_events(self) -> int:
        """Total resilience events observed alongside the launches."""
        return sum(self.by_event.values())

    @property
    def faults_injected(self) -> int:
        return self.by_event.get("fault_injected", 0)

    @property
    def corruptions_detected(self) -> int:
        return self.by_event.get("corruption_detected", 0)

    @property
    def retries(self) -> int:
        return self.by_event.get("retry", 0)

    @property
    def fallbacks(self) -> int:
        return self.by_event.get("fallback", 0)

    @property
    def device_failures(self) -> int:
        return self.by_event.get("device_failure", 0)

    @property
    def repartitions(self) -> int:
        return self.by_event.get("repartition", 0)

    @property
    def watchdog_trips(self) -> int:
        return self.by_event.get("watchdog", 0)

    @property
    def backend_failures(self) -> int:
        return self.by_event.get("backend_failure", 0)

    @property
    def breaker_skips(self) -> int:
        return self.by_event.get("breaker_open", 0)

    @property
    def brownouts(self) -> int:
        return self.by_event.get("brownout", 0)

    @property
    def cache_lookups(self) -> int:
        """Launches that went through the compile layer at all."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of compiled launches served from cache (0.0 when none)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @classmethod
    def from_records(
        cls,
        records: list[LaunchRecord],
        events: "list[ResilienceEvent] | tuple[ResilienceEvent, ...]" = (),
        compiles: "list[CompileRecord] | tuple[CompileRecord, ...]" = (),
        plans: "list[PlanRecord] | tuple[PlanRecord, ...]" = (),
    ) -> "TraceSummary":
        by_backend: dict[str, int] = {}
        by_ring: dict[str, int] = {}
        mmos = programs = unit_ops = products = 0
        hits = misses = removed = 0
        wall = cycles = 0.0
        for rec in records:
            by_backend[rec.backend] = by_backend.get(rec.backend, 0) + 1
            by_ring[rec.ring] = by_ring.get(rec.ring, 0) + 1
            mmos += rec.mmo_instructions
            programs += rec.warp_programs
            unit_ops += rec.unit_ops
            if rec.spgemm is not None:
                products += rec.spgemm.products
            if rec.cache_hit is True:
                hits += 1
            elif rec.cache_hit is False:
                misses += 1
            removed += rec.optimizer_removed
            wall += rec.wall_time_s
            cycles += rec.cycle_estimate
        by_event: dict[str, int] = {}
        for event in events:
            by_event[event.kind] = by_event.get(event.kind, 0) + 1
        verified = sum(1 for comp in compiles if comp.verified)
        verifier_warnings = sum(comp.verifier_warnings for comp in compiles)
        return cls(
            launches=len(records),
            by_backend=by_backend,
            by_ring=by_ring,
            mmo_instructions=mmos,
            warp_programs=programs,
            unit_ops=unit_ops,
            spgemm_products=products,
            wall_time_s=wall,
            cycle_estimate=cycles,
            cache_hits=hits,
            cache_misses=misses,
            optimizer_removed=removed,
            by_event=by_event,
            compile_requests=len(compiles),
            programs_verified=verified,
            verifier_warnings=verifier_warnings,
            plan_decisions=len(plans),
            plans_refined=sum(1 for plan in plans if plan.refined),
            plan_probes=sum(1 for plan in plans if plan.probe),
        )

    def as_row(self) -> dict[str, object]:
        """Flatten to a bench-table row (see ``repro.bench.reporting``)."""
        return {
            "launches": self.launches,
            "backends": "+".join(sorted(self.by_backend)) or "-",
            "rings": "+".join(sorted(self.by_ring)) or "-",
            "mmo_instructions": self.mmo_instructions,
            "warp_programs": self.warp_programs,
            "unit_ops": self.unit_ops,
            "spgemm_products": self.spgemm_products,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "optimizer_removed": self.optimizer_removed,
            "resilience_events": self.resilience_events,
            "plan_decisions": self.plan_decisions,
            "programs_verified": self.programs_verified,
            "wall_time_s": self.wall_time_s,
            "cycle_estimate": self.cycle_estimate,
        }
