"""Host-side runtime driver — the paper's Figure 7 workflow as an API.

The SIMD² programming model keeps a host program in charge: allocate
device buffers, move data, launch matrix kernels, interleave scalar/vector
kernels (convergence checks), and read results back.  :class:`HostRuntime`
packages that workflow over the emulated device and records an *event
timeline* (malloc/memcpy/launch/check) so tests and examples can assert
the exact host-device interaction pattern — e.g. that a convergence-
checked closure performs no extra device↔host transfers between the mmo
and the check, the data-movement property the paper highlights.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.compile.lower import resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.hw.device import Simd2Device
from repro.runtime.closure import max_iterations_for
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import KernelStats, mmo_tiled

__all__ = ["HostEvent", "HostClosureOutcome", "HostRuntime"]


@dataclasses.dataclass(frozen=True)
class HostEvent:
    """One entry of the host-device interaction timeline."""

    kind: str  # malloc | memcpy_h2d | memcpy_d2h | mmo_launch | check | free
    detail: str


@dataclasses.dataclass(frozen=True)
class HostClosureOutcome:
    """Result of :meth:`HostRuntime.run_closure`."""

    matrix: np.ndarray
    iterations: int
    converged: bool
    kernel_stats: tuple[KernelStats, ...]


class HostRuntime:
    """Drives SIMD² computations on a device, logging every host step."""

    def __init__(
        self,
        device: Simd2Device | None = None,
        *,
        backend: str | None = None,
        context: ExecutionContext | None = None,
    ):
        # Device-centric API: the legacy default backend stays "emulate"
        # unless an explicit backend or context says otherwise.
        if context is None:
            context = ExecutionContext(backend="emulate")
        if device is None:
            device = (
                context.device if context.device is not None
                else Simd2Device(sm_count=4)
            )
        self.device = device
        # The context carries the device unconditionally; backends that do
        # not emulate hardware simply ignore it (this replaces the old
        # per-call-site "device only when emulating" branching).
        self.context = resolve_context(context, backend=backend, device=device)
        self.backend = self.context.backend
        self.events: list[HostEvent] = []

    # ------------------------------------------------------------------
    def _log(self, kind: str, detail: str) -> None:
        self.events.append(HostEvent(kind, detail))

    def event_kinds(self) -> list[str]:
        return [event.kind for event in self.events]

    # ------------------------------------------------------------------
    # buffer management (cudaMalloc / cudaMemcpy analogues)
    # ------------------------------------------------------------------
    def upload(self, name: str, host_array: np.ndarray, dtype=np.float32) -> None:
        """malloc + memcpy H2D."""
        host_array = np.asarray(host_array)
        self.device.malloc(name, host_array.shape, dtype)
        self._log("malloc", f"{name}{host_array.shape}")
        self.device.memcpy_h2d(name, host_array)
        self._log("memcpy_h2d", name)

    def download(self, name: str) -> np.ndarray:
        self._log("memcpy_d2h", name)
        return self.device.memcpy_d2h(name)

    def free(self, name: str) -> None:
        self.device.free(name)
        self._log("free", name)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def run_mmo(
        self,
        ring: Semiring | str,
        a_name: str,
        b_name: str,
        c_name: str | None,
        out_name: str,
    ) -> KernelStats:
        """One whole-matrix mmo over named device buffers."""
        ring = get_semiring(ring)
        a = self.device.global_memory[a_name]
        b = self.device.global_memory[b_name]
        c = None if c_name is None else self.device.global_memory[c_name]
        result, stats = mmo_tiled(ring, a, b, c, context=self.context)
        if out_name not in self.device.global_memory:
            self.device.malloc(out_name, result.shape, result.dtype)
            self._log("malloc", f"{out_name}{result.shape}")
        self.device.global_memory[out_name][...] = result
        self._log("mmo_launch", f"{ring.name}: {a_name}x{b_name}->{out_name}")
        return stats

    def run_closure(
        self,
        ring: Semiring | str,
        adjacency_name: str,
        *,
        method: str = "leyzorek",
        convergence_check: bool = True,
        max_iterations: int | None = None,
    ) -> HostClosureOutcome:
        """The Figure 7 loop over a named device buffer.

        Allocates a scratch ``<name>__delta`` buffer, iterates
        ``delta = dist ⊕ (dist ⊗ X)`` with a device-side convergence check,
        and leaves the final matrix in the adjacency buffer.
        """
        ring = get_semiring(ring)
        if method not in ("leyzorek", "bellman-ford"):
            raise SemiringError(f"unknown closure method {method!r}")
        dist = self.device.global_memory[adjacency_name]
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise SemiringError(f"closure needs a square buffer, got {dist.shape}")
        n = dist.shape[0]
        base = dist.copy()
        if max_iterations is not None:
            limit = max_iterations
        else:
            limit = max_iterations_for(method, n) + (1 if convergence_check else 0)

        converged = False
        iterations = 0
        all_stats: list[KernelStats] = []

        # Figure 7 compiles the kernel once, then the host loop only
        # launches: each iteration is lowered onto a LaunchGraph (launch
        # plus device-side convergence check) run by the context's
        # scheduler; the shared ArtifactPool compiles the
        # (n, n, n)-with-accumulator artifact once up front.
        # Lazy: repro.sched orchestrates this module's loops.
        from repro.sched.builders import ArtifactPool, closure_step_graph
        from repro.sched.executor import resolve_scheduler

        opcode = resolve_opcode(ring)
        pool = ArtifactPool(self.context, "closure")
        scheduler = resolve_scheduler(self.context)

        for _ in range(limit):
            operand = dist if method == "leyzorek" else base
            # Closure iterates non-finite state legitimately (see
            # repro.runtime.closure): per-iteration validation stays off.
            # equal_nan=False keeps the host's plain np.array_equal check.
            graph, out_ref, check_ref, launch_refs = closure_step_graph(
                self.context, pool, opcode, dist, operand,
                convergence_check=convergence_check,
                validate_inputs=False, equal_nan=False,
            )
            step = scheduler.run(graph, context=self.context)
            delta = np.asarray(step[out_ref])
            for ref in launch_refs:
                all_stats.append(step.stats_of(ref))
            self._log("mmo_launch", f"{ring.name} closure step {iterations}")
            iterations += 1
            if convergence_check:
                same = check_ref is not None and bool(step[check_ref])
                self._log("check", f"convergence after step {iterations}")
                dist[...] = delta
                if same:
                    converged = True
                    break
            else:
                dist[...] = delta

        return HostClosureOutcome(
            matrix=dist.copy(),
            iterations=iterations,
            converged=converged,
            kernel_stats=tuple(all_stats),
        )
