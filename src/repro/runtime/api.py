"""The low-level SIMD² programming interface (paper Table 3).

The paper exposes C++ functions — ``simd2::matrix``, ``simd2::fillmatrix``,
``simd2::loadmatrix``, ``simd2::mmo``, ``simd2::storematrix`` — that map
one-to-one onto ISA instructions.  :class:`TileProgramBuilder` is the
Python analogue: each method appends the corresponding instruction and the
builder allocates matrix registers behind fragment handles, so kernels read
like the paper's Figure 6 listing::

    builder = TileProgramBuilder()
    a = builder.matrix("a")            # simd2::matrix<matrix_a, ...>
    b = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(a, addr=0, ld=16)
    builder.loadmatrix(b, addr=256, ld=16)
    builder.fillmatrix(acc, math.inf)
    builder.mmo(acc, a, b, acc, "minplus")
    builder.storematrix(addr=512, source=acc, ld=16)
    program = builder.build()
"""

from __future__ import annotations

import dataclasses

from repro.isa.instructions import (
    FillMatrix,
    Instruction,
    LoadMatrix,
    Mmo,
    NUM_MATRIX_REGISTERS,
    StoreMatrix,
)
from repro.isa.opcodes import ElementType, IsaError, MmoOpcode
from repro.isa.program import Program

__all__ = ["MatrixHandle", "TileProgramBuilder", "RuntimeError_", "ROLE_ETYPES"]


class RuntimeError_(RuntimeError):
    """Raised on misuse of the runtime programming interface."""


#: Default element types per declared matrix role, mirroring wmma fragment
#: kinds: operand fragments are fp16, accumulators fp32.
ROLE_ETYPES: dict[str, ElementType] = {
    "a": ElementType.F16,
    "b": ElementType.F16,
    "accumulator": ElementType.F32,
}

#: Boolean variants used by the or-and ring.
_BOOLEAN_ROLE_ETYPES: dict[str, ElementType] = {
    "a": ElementType.B8,
    "b": ElementType.B8,
    "accumulator": ElementType.B8,
}


@dataclasses.dataclass(frozen=True)
class MatrixHandle:
    """An opaque handle to an allocated fragment register."""

    register: int
    role: str
    etype: ElementType


class TileProgramBuilder:
    """Builds one warp's tile program through Table-3-style calls."""

    def __init__(self, *, boolean: bool = False):
        self._instructions: list[Instruction] = []
        self._next_register = 0
        self._boolean = boolean
        self._built = False

    # ------------------------------------------------------------------
    def matrix(self, role: str) -> MatrixHandle:
        """Declare a fragment (``simd2::matrix``) and reserve its register."""
        roles = _BOOLEAN_ROLE_ETYPES if self._boolean else ROLE_ETYPES
        if role not in roles:
            raise RuntimeError_(
                f"unknown matrix role {role!r}; expected one of {sorted(roles)}"
            )
        if self._next_register >= NUM_MATRIX_REGISTERS:
            raise RuntimeError_(
                f"register file exhausted ({NUM_MATRIX_REGISTERS} fragments)"
            )
        handle = MatrixHandle(self._next_register, role, roles[role])
        self._next_register += 1
        return handle

    def fillmatrix(self, target: MatrixHandle, value: float) -> None:
        """``simd2::fillmatrix`` — broadcast an immediate into a fragment."""
        self._append(FillMatrix(dst=target.register, value=float(value), etype=target.etype))

    def loadmatrix(self, target: MatrixHandle, addr: int, ld: int) -> None:
        """``simd2::loadmatrix`` — shared memory → fragment."""
        self._append(LoadMatrix(dst=target.register, addr=addr, ld=ld, etype=target.etype))

    def mmo(
        self,
        destination: MatrixHandle,
        a: MatrixHandle,
        b: MatrixHandle,
        c: MatrixHandle,
        opcode: MmoOpcode | str,
    ) -> None:
        """``simd2::mmo`` — ``D = C ⊕ (A ⊗ B)`` on fragments."""
        if isinstance(opcode, str):
            opcode = MmoOpcode.from_mnemonic(opcode)
        for name, handle, want in (("a", a, "a"), ("b", b, "b")):
            if handle.role not in ("a", "b"):
                raise RuntimeError_(
                    f"mmo operand {name} must be an operand fragment, "
                    f"got role {handle.role!r}"
                )
        for name, handle in (("c", c), ("d", destination)):
            if handle.role != "accumulator":
                raise RuntimeError_(
                    f"mmo {name} must be an accumulator fragment, "
                    f"got role {handle.role!r}"
                )
        self._append(
            Mmo(opcode, destination.register, a.register, b.register, c.register)
        )

    def storematrix(self, addr: int, source: MatrixHandle, ld: int) -> None:
        """``simd2::storematrix`` — fragment → shared memory."""
        self._append(StoreMatrix(src=source.register, addr=addr, ld=ld, etype=source.etype))

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalise into a validated :class:`~repro.isa.program.Program`."""
        if self._built:
            raise RuntimeError_("builder already built; create a new one")
        self._built = True
        try:
            return Program(self._instructions, auto_halt=True)
        except IsaError as exc:
            raise RuntimeError_(f"invalid tile program: {exc}") from exc

    def _append(self, instruction: Instruction) -> None:
        if self._built:
            raise RuntimeError_("builder already built; create a new one")
        self._instructions.append(instruction)
