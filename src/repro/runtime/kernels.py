"""High-level whole-matrix SIMD² kernels (paper Figure 6).

:func:`mmo_tiled` is the Python analogue of the paper's ``simd2_minplus``
family: it accepts arbitrarily-shaped matrices, handles tiling/padding
implicitly, and computes ``D = C ⊕ (A ⊗ B)`` by iterating 16×16 tile
operations.  Two interchangeable backends mirror the paper's evaluation
framework (Section 5.1):

- ``"vectorized"`` — the cuASR/CUTLASS-like CUDA-core backend: NumPy
  vectorised semiring arithmetic with identical padding and precision.
- ``"emulate"`` — the instruction-level backend: builds one warp program
  per output tile through the Table-3 API, stages operand panels into
  shared memory, and executes on the :class:`~repro.hw.device.Simd2Device`
  emulator, returning exact dynamic instruction statistics.

Both backends produce identical results (bit-for-bit for the min/max/or
rings and for integer-valued data; up to summation-order ulps otherwise),
which is exactly the cross-validation the paper's framework performs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import ops as core_ops
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div, crop, pad_to_tiles
from repro.hw.device import Simd2Device, WarpWorkItem
from repro.hw.shared_memory import SharedMemory
from repro.hw.warp import ExecutionStats
from repro.isa.opcodes import ElementType, MmoOpcode
from repro.isa.program import Program
from repro.runtime.api import RuntimeError_, TileProgramBuilder

__all__ = ["KernelStats", "mmo_tiled", "mmo_tiled_split_k", "build_tile_mmo_program"]

_TILE_ELEMS = TILE * TILE


@dataclasses.dataclass(frozen=True)
class KernelStats:
    """Static tiling statistics of one whole-matrix mmo kernel call.

    These are the counts the paper's validation flow collects to check the
    performance-emulation backend issues exactly the expected number of
    SIMD² operations; the timing model consumes them as well.

    Convention: ``tiles_k`` is the number of inner tile steps each
    output-tile program performs — ``ceil(k / 16)`` for ``k > 0`` and ``1``
    for ``k == 0`` (a single identity-padded step the reduction absorbs).
    Degenerate calls with an empty output (``m == 0`` or ``n == 0``) report
    the same ``tiles_k`` even though no program runs, so
    ``mmo_instructions == tiles_m * tiles_n * tiles_k`` is zero there.
    """

    m: int
    n: int
    k: int
    tiles_m: int
    tiles_n: int
    tiles_k: int
    execution: ExecutionStats | None = None

    @property
    def warp_programs(self) -> int:
        """One warp program per output tile."""
        return self.tiles_m * self.tiles_n

    @property
    def mmo_instructions(self) -> int:
        return self.tiles_m * self.tiles_n * self.tiles_k

    @property
    def load_instructions(self) -> int:
        """Per program: the C tile plus an (A, B) tile pair per inner step."""
        return self.warp_programs * (1 + 2 * self.tiles_k)

    @property
    def store_instructions(self) -> int:
        return self.warp_programs

    @property
    def unit_ops(self) -> int:
        """4×4×4 unit operations: 64 per 16×16×16 warp-level mmo."""
        return self.mmo_instructions * (TILE // 4) ** 3


def build_tile_mmo_program(
    opcode: MmoOpcode, tiles_k: int, *, boolean: bool
) -> tuple[Program, int, int]:
    """Build the per-output-tile warp program of the Figure 6 kernel.

    Shared-memory layout (element addresses within each type's space):

    - A panel: ``tiles_k`` input tiles at ``kk * 256``,
    - B panel: ``tiles_k`` input tiles at ``(tiles_k + kk) * 256``,
    - C tile then D tile in the output element space, starting past the
      input panel bytes.

    Returns ``(program, c_addr, d_addr)`` with the output-space addresses.
    """
    if tiles_k <= 0:
        raise RuntimeError_(f"tiles_k must be positive, got {tiles_k}")
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    input_bytes = in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS
    c_addr = ceil_div(input_bytes, out_etype.nbytes)
    d_addr = c_addr + _TILE_ELEMS

    builder = TileProgramBuilder(boolean=boolean)
    a_frag = builder.matrix("a")
    b_frag = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(acc, addr=c_addr, ld=TILE)
    for kk in range(tiles_k):
        builder.loadmatrix(a_frag, addr=kk * _TILE_ELEMS, ld=TILE)
        builder.loadmatrix(b_frag, addr=(tiles_k + kk) * _TILE_ELEMS, ld=TILE)
        builder.mmo(acc, a_frag, b_frag, acc, opcode)
    builder.storematrix(addr=d_addr, source=acc, ld=TILE)
    return builder.build(), c_addr, d_addr


def mmo_tiled(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    backend: str = "vectorized",
    device: Simd2Device | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Whole-matrix ``D = C ⊕ (A ⊗ B)`` with implicit 16×16 tiling.

    Parameters
    ----------
    ring:
        Semiring, semiring name, or mmo opcode.
    a, b, c:
        ``(m, k)``, ``(k, n)`` and optional ``(m, n)`` matrices.
    backend:
        ``"vectorized"`` (CUDA-core analogue) or ``"emulate"``
        (instruction-level emulation on SIMD² units).
    device:
        Device to run the ``"emulate"`` backend on; a 4-SM device is
        created when omitted.  Ignored by the vectorised backend.

    Returns
    -------
    (D, KernelStats)
        The result cropped to ``(m, n)`` plus tiling statistics (with
        dynamic :class:`ExecutionStats` attached for the emulate backend).
    """
    if isinstance(ring, MmoOpcode):
        opcode = ring
    else:
        opcode = MmoOpcode.from_semiring(get_semiring(ring))
    semiring = opcode.semiring

    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(
            f"bad mmo operand shapes A{a.shape} x B{b.shape}"
        )
    m, k = a.shape
    n = b.shape[1]
    if c is not None:
        c = np.asarray(c)
        if c.shape != (m, n):
            raise RuntimeError_(f"accumulator shape {c.shape} != {(m, n)}")
    if m == 0 or n == 0:
        empty = semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
        return empty, KernelStats(m, n, k, 0, 0, ceil_div(k, TILE) if k else 1)

    a_pad = pad_to_tiles(a.astype(semiring.output_dtype), semiring.k_pad_a)
    b_pad = pad_to_tiles(b.astype(semiring.output_dtype), semiring.k_pad_b)
    c_full = semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
    c_pad = pad_to_tiles(c_full, semiring.oplus_identity)
    # Degenerate inner dimension: run one full tile of absorbed inner steps.
    if k == 0:
        a_pad = np.full(
            (c_pad.shape[0], TILE), semiring.k_pad_a, semiring.output_dtype
        )
        b_pad = np.full(
            (TILE, c_pad.shape[1]), semiring.k_pad_b, semiring.output_dtype
        )

    tiles_m = a_pad.shape[0] // TILE
    tiles_k = a_pad.shape[1] // TILE
    tiles_n = b_pad.shape[1] // TILE
    stats = KernelStats(m, n, k, tiles_m, tiles_n, tiles_k)

    if backend == "vectorized":
        d_pad = core_ops.mmo(semiring, a_pad, b_pad, c_pad)
        return crop(d_pad, m, n).copy(), stats

    if backend != "emulate":
        raise RuntimeError_(f"unknown backend {backend!r}")

    device = device if device is not None else Simd2Device(sm_count=4)
    program, c_addr, d_addr = build_tile_mmo_program(
        opcode, tiles_k, boolean=semiring.is_boolean()
    )
    in_etype = ElementType.B8 if semiring.is_boolean() else ElementType.F16
    out_etype = ElementType.B8 if semiring.is_boolean() else ElementType.F32

    shared_bytes = (
        in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS + out_etype.nbytes * 2 * _TILE_ELEMS
    ) + 64

    # Stage each A row-panel and each B col-panel ONCE, pre-converted to the
    # shared-memory element format and laid out tile-major exactly as the
    # warp program expects (tile kk of the A panel at element kk*256, tile
    # kk of the B panel at (tiles_k + kk)*256).  The panels are then shared
    # across the whole tile grid instead of being re-converted per output
    # tile.  Row-major flattening of the (tiles_k*TILE, TILE) panel shape is
    # precisely that tile-major layout.
    in_dtype = SharedMemory.dtype_for(in_etype)
    out_dtype = SharedMemory.dtype_for(out_etype)
    a_panels = [
        a_pad[ti * TILE : (ti + 1) * TILE]
        .reshape(TILE, tiles_k, TILE)
        .transpose(1, 0, 2)
        .reshape(tiles_k * TILE, TILE)
        .astype(in_dtype)
        for ti in range(tiles_m)
    ]
    b_panels = [
        b_pad[:, tj * TILE : (tj + 1) * TILE].astype(in_dtype)
        for tj in range(tiles_n)
    ]
    c_conv = c_pad.astype(out_dtype, copy=False)

    work_items: list[tuple[int, int, SharedMemory]] = []
    items: list[WarpWorkItem] = []
    for ti in range(tiles_m):
        for tj in range(tiles_n):
            shm = SharedMemory(shared_bytes)
            shm.write_matrix(0, a_panels[ti], in_etype)
            shm.write_matrix(tiles_k * _TILE_ELEMS, b_panels[tj], in_etype)
            c_tile = c_conv[ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE]
            shm.write_matrix(c_addr, c_tile, out_etype)
            work_items.append((ti, tj, shm))
            items.append(WarpWorkItem(program, shm))

    execution = device.launch(items)
    d_pad = np.empty_like(c_pad)
    for ti, tj, shm in work_items:
        d_tile = shm.read_matrix(d_addr, (TILE, TILE), out_etype)
        d_pad[ti * TILE : (ti + 1) * TILE, tj * TILE : (tj + 1) * TILE] = d_tile

    stats = dataclasses.replace(stats, execution=execution)
    _check_emulation_parity(stats)
    return crop(d_pad, m, n).copy(), stats


def _check_emulation_parity(stats: KernelStats) -> None:
    """Assert the emulator issued exactly the statically predicted counts.

    This is the paper's statistics cross-check between the validation and
    performance-emulation backends.
    """
    execution = stats.execution
    assert execution is not None
    if (
        execution.mmos != stats.mmo_instructions
        or execution.loads != stats.load_instructions
        or execution.stores != stats.store_instructions
        or execution.unit_ops != stats.unit_ops
    ):
        raise RuntimeError_(
            "emulation statistics diverge from the static tiling prediction: "
            f"{execution} vs {stats}"
        )


def mmo_tiled_split_k(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    splits: int = 2,
    backend: str = "vectorized",
    device: Simd2Device | None = None,
) -> tuple[np.ndarray, list[KernelStats]]:
    """Split-k scheduling: partition the inner dimension across kernels.

    Deep reductions limit parallelism when the ``m×n`` tile grid is small;
    GPUs then split k across concurrent kernels, each producing a partial
    result, and combine the partials — valid for *every* SIMD² ring since
    ⊕ is associative and commutative (the same property the reduction tree
    relies on).  The accumulator ``C`` is folded in exactly once.

    Returns the combined result and per-split kernel statistics.
    """
    if isinstance(ring, MmoOpcode):
        semiring = ring.semiring
    else:
        semiring = get_semiring(ring)
    if splits <= 0:
        raise RuntimeError_(f"splits must be positive, got {splits}")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(f"bad mmo operand shapes A{a.shape} x B{b.shape}")
    k = a.shape[1]
    splits = min(splits, k) if k else 1

    bounds = np.linspace(0, k, splits + 1, dtype=int)
    partials: list[np.ndarray] = []
    stats_list: list[KernelStats] = []
    for s in range(splits):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        partial, stats = mmo_tiled(
            semiring, a[:, lo:hi], b[lo:hi, :], None, backend=backend, device=device
        )
        partials.append(partial)
        stats_list.append(stats)

    combined = partials[0]
    for partial in partials[1:]:
        combined = np.asarray(
            semiring.oplus(combined, partial), dtype=semiring.output_dtype
        )
    if c is not None:
        c = np.asarray(c, dtype=semiring.output_dtype)
        if c.shape != combined.shape:
            raise RuntimeError_(f"accumulator shape {c.shape} != {combined.shape}")
        combined = np.asarray(
            semiring.oplus(combined, c), dtype=semiring.output_dtype
        )
    return combined, stats_list
