"""High-level whole-matrix SIMD² kernels (paper Figure 6).

:func:`mmo_tiled` is the Python analogue of the paper's ``simd2_minplus``
family: it accepts arbitrarily-shaped matrices, handles tiling/padding
implicitly, and computes ``D = C ⊕ (A ⊗ B)`` by dispatching to a
registered execution backend (see :mod:`repro.backends`):

- ``"vectorized"`` — the cuASR/CUTLASS-like CUDA-core backend: NumPy
  vectorised semiring arithmetic with identical padding and precision.
- ``"emulate"`` — the instruction-level backend: builds one warp program
  per output tile through the Table-3 API, stages operand panels into
  shared memory, and executes on the :class:`~repro.hw.device.Simd2Device`
  emulator, returning exact dynamic instruction statistics.
- ``"sparse"`` — Gustavson spGEMM over CSR operands, for the paper's
  Section 6.5 sparse datapath.

All backends produce matching results (bit-for-bit for the min/max/or
rings and for integer-valued data; up to summation-order ulps otherwise),
which is exactly the cross-validation the paper's framework performs.

This module owns the *dispatch seam*: shape validation, backend
resolution through the :class:`~repro.runtime.context.ExecutionContext`,
and per-launch trace recording.  The execution bodies live in
:mod:`repro.backends`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.hw.device import Simd2Device
from repro.hw.warp import ExecutionStats
from repro.isa.opcodes import ElementType, MmoOpcode
from repro.isa.program import Program
from repro.runtime.api import RuntimeError_, TileProgramBuilder
from repro.runtime.context import ExecutionContext, resolve_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparse.spgemm import SpgemmStats

__all__ = ["KernelStats", "mmo_tiled", "mmo_tiled_split_k", "build_tile_mmo_program"]

_TILE_ELEMS = TILE * TILE


@dataclasses.dataclass(frozen=True)
class KernelStats:
    """Static tiling statistics of one whole-matrix mmo kernel call.

    These are the counts the paper's validation flow collects to check the
    performance-emulation backend issues exactly the expected number of
    SIMD² operations; the timing model consumes them as well.

    Convention: ``tiles_k`` is the number of inner tile steps each
    output-tile program performs — ``ceil(k / 16)`` for ``k > 0`` and ``1``
    for ``k == 0`` (a single identity-padded step the reduction absorbs).
    Degenerate calls with an empty output (``m == 0`` or ``n == 0``) report
    the same ``tiles_k`` even though no program runs, so
    ``mmo_instructions == tiles_m * tiles_n * tiles_k`` is zero there.

    Backend-specific counters ride along: ``execution`` carries the
    dynamic emulator statistics (emulate backend), ``spgemm`` the spGEMM
    work counters (sparse backend).
    """

    m: int
    n: int
    k: int
    tiles_m: int
    tiles_n: int
    tiles_k: int
    execution: ExecutionStats | None = None
    spgemm: "SpgemmStats | None" = None

    @property
    def warp_programs(self) -> int:
        """One warp program per output tile."""
        return self.tiles_m * self.tiles_n

    @property
    def mmo_instructions(self) -> int:
        return self.tiles_m * self.tiles_n * self.tiles_k

    @property
    def load_instructions(self) -> int:
        """Per program: the C tile plus an (A, B) tile pair per inner step."""
        return self.warp_programs * (1 + 2 * self.tiles_k)

    @property
    def store_instructions(self) -> int:
        return self.warp_programs

    @property
    def unit_ops(self) -> int:
        """4×4×4 unit operations: 64 per 16×16×16 warp-level mmo."""
        return self.mmo_instructions * (TILE // 4) ** 3


def build_tile_mmo_program(
    opcode: MmoOpcode, tiles_k: int, *, boolean: bool
) -> tuple[Program, int, int]:
    """Build the per-output-tile warp program of the Figure 6 kernel.

    Shared-memory layout (element addresses within each type's space):

    - A panel: ``tiles_k`` input tiles at ``kk * 256``,
    - B panel: ``tiles_k`` input tiles at ``(tiles_k + kk) * 256``,
    - C tile then D tile in the output element space, starting past the
      input panel bytes.

    Returns ``(program, c_addr, d_addr)`` with the output-space addresses.
    """
    if tiles_k <= 0:
        raise RuntimeError_(f"tiles_k must be positive, got {tiles_k}")
    in_etype = ElementType.B8 if boolean else ElementType.F16
    out_etype = ElementType.B8 if boolean else ElementType.F32
    input_bytes = in_etype.nbytes * 2 * tiles_k * _TILE_ELEMS
    c_addr = ceil_div(input_bytes, out_etype.nbytes)
    d_addr = c_addr + _TILE_ELEMS

    builder = TileProgramBuilder(boolean=boolean)
    a_frag = builder.matrix("a")
    b_frag = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(acc, addr=c_addr, ld=TILE)
    for kk in range(tiles_k):
        builder.loadmatrix(a_frag, addr=kk * _TILE_ELEMS, ld=TILE)
        builder.loadmatrix(b_frag, addr=(tiles_k + kk) * _TILE_ELEMS, ld=TILE)
        builder.mmo(acc, a_frag, b_frag, acc, opcode)
    builder.storematrix(addr=d_addr, source=acc, ld=TILE)
    return builder.build(), c_addr, d_addr


def _record_launch(
    context: ExecutionContext,
    api: str,
    opcode: MmoOpcode,
    stats: KernelStats,
    wall_time_s: float,
) -> None:
    """Append one LaunchRecord to the context's trace sink."""
    from repro.runtime.trace import LaunchRecord
    from repro.timing.cycles import kernel_cycle_estimate  # lazy: cycles imports us

    semiring = opcode.semiring
    cycles = kernel_cycle_estimate(stats, boolean=semiring.is_boolean()).total
    context.trace.record(
        LaunchRecord(
            api=api,
            backend=context.backend,
            ring=semiring.name,
            opcode=opcode.name,
            shape=(stats.m, stats.n, stats.k),
            tiles=(stats.tiles_m, stats.tiles_n, stats.tiles_k),
            wall_time_s=wall_time_s,
            kernel_stats=stats,
            cycle_estimate=cycles,
        )
    )


def mmo_tiled(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
    api: str = "mmo_tiled",
) -> tuple[np.ndarray, KernelStats]:
    """Whole-matrix ``D = C ⊕ (A ⊗ B)`` with implicit 16×16 tiling.

    Parameters
    ----------
    ring:
        Semiring, semiring name, or mmo opcode.
    a, b, c:
        ``(m, k)``, ``(k, n)`` and optional ``(m, n)`` matrices.
    backend:
        Registry name of the execution backend (``"vectorized"``,
        ``"emulate"``, ``"sparse"``, or anything registered).  ``None``
        defers to the ambient :func:`~repro.runtime.context
        .default_context` (whose default is ``"vectorized"``).
    device:
        Device for device-oriented backends (``"emulate"``); carried in
        the context and ignored by backends that do not emulate hardware.
    context:
        Explicit :class:`~repro.runtime.context.ExecutionContext`; the
        ``backend``/``device`` keywords override its fields when given.
    api:
        Label recorded in trace records (entry points pass their name).

    Returns
    -------
    (D, KernelStats)
        The result cropped to ``(m, n)`` plus tiling statistics (with
        dynamic :class:`ExecutionStats` attached for the emulate backend
        and :class:`~repro.sparse.spgemm.SpgemmStats` for the sparse one).
    """
    if isinstance(ring, MmoOpcode):
        opcode = ring
    else:
        opcode = MmoOpcode.from_semiring(get_semiring(ring))
    semiring = opcode.semiring

    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(
            f"bad mmo operand shapes A{a.shape} x B{b.shape}"
        )
    m, k = a.shape
    n = b.shape[1]
    if c is not None:
        c = np.asarray(c)
        if c.shape != (m, n):
            raise RuntimeError_(f"accumulator shape {c.shape} != {(m, n)}")

    # Resolve + validate the backend once, up front — even for degenerate
    # shapes, so a typo fails identically on every input.
    ctx = resolve_context(context, backend=backend, device=device)
    from repro.backends.base import get_backend  # lazy: backends import us

    impl = get_backend(ctx.backend)

    if m == 0 or n == 0:
        empty = (
            semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
        )
        stats = KernelStats(m, n, k, 0, 0, ceil_div(k, TILE) if k else 1)
        if ctx.trace is not None:
            _record_launch(ctx, api, opcode, stats, 0.0)
        return empty, stats

    start = time.perf_counter()
    result, stats = impl.run_mmo(opcode, a, b, c, context=ctx)
    elapsed = time.perf_counter() - start
    if ctx.trace is not None:
        _record_launch(ctx, api, opcode, stats, elapsed)
    return result, stats


def mmo_tiled_split_k(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    splits: int = 2,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
) -> tuple[np.ndarray, list[KernelStats]]:
    """Split-k scheduling: partition the inner dimension across kernels.

    Deep reductions limit parallelism when the ``m×n`` tile grid is small;
    GPUs then split k across concurrent kernels, each producing a partial
    result, and combine the partials — valid for *every* SIMD² ring since
    ⊕ is associative and commutative (the same property the reduction tree
    relies on).  The accumulator ``C`` is folded in exactly once.

    Returns the combined result and per-split kernel statistics.
    """
    if isinstance(ring, MmoOpcode):
        semiring = ring.semiring
    else:
        semiring = get_semiring(ring)
    if splits <= 0:
        raise RuntimeError_(f"splits must be positive, got {splits}")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(f"bad mmo operand shapes A{a.shape} x B{b.shape}")
    k = a.shape[1]
    splits = min(splits, k) if k else 1
    ctx = resolve_context(context, backend=backend, device=device)

    bounds = np.linspace(0, k, splits + 1, dtype=int)
    partials: list[np.ndarray] = []
    stats_list: list[KernelStats] = []
    for s in range(splits):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        partial, stats = mmo_tiled(
            semiring, a[:, lo:hi], b[lo:hi, :], None,
            context=ctx, api="mmo_tiled_split_k",
        )
        partials.append(partial)
        stats_list.append(stats)

    combined = partials[0]
    for partial in partials[1:]:
        combined = np.asarray(
            semiring.oplus(combined, partial), dtype=semiring.output_dtype
        )
    if c is not None:
        c = np.asarray(c, dtype=semiring.output_dtype)
        if c.shape != combined.shape:
            raise RuntimeError_(f"accumulator shape {c.shape} != {combined.shape}")
        combined = np.asarray(
            semiring.oplus(combined, c), dtype=semiring.output_dtype
        )
    return combined, stats_list
