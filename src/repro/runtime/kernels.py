"""High-level whole-matrix SIMD² kernels (paper Figure 6).

:func:`mmo_tiled` is the Python analogue of the paper's ``simd2_minplus``
family: it accepts arbitrarily-shaped matrices, handles tiling/padding
implicitly, and computes ``D = C ⊕ (A ⊗ B)`` in two phases:

1. **compile** — the launch shape is lowered (through the context's
   :class:`~repro.compile.cache.PlanCache`) into an immutable
   :class:`~repro.compile.artifact.CompiledMmo`: resolved opcode, tile
   grid, optimiser-cleaned warp program, shared-memory layout;
2. **execute** — a registered backend (see :mod:`repro.backends`) runs
   the artifact against the validated operands:

   - ``"vectorized"`` — the cuASR/CUTLASS-like CUDA-core backend: NumPy
     vectorised semiring arithmetic with identical padding and precision.
   - ``"emulate"`` — the instruction-level backend: replays the compiled
     warp program per output tile on the
     :class:`~repro.hw.device.Simd2Device` emulator, returning exact
     dynamic instruction statistics.
   - ``"sparse"`` — Gustavson spGEMM over CSR operands, for the paper's
     Section 6.5 sparse datapath.

All backends produce matching results (bit-for-bit for the min/max/or
rings and for integer-valued data; up to summation-order ulps otherwise),
which is exactly the cross-validation the paper's framework performs.

This module owns the *dispatch seam*: shape validation, backend
resolution through the :class:`~repro.runtime.context.ExecutionContext`,
and cached compilation.  Every cross-cutting per-launch concern — input
validation, fault injection, trace recording (including whether the plan
cache hit and what the optimiser removed) — runs through the context's
:class:`~repro.hooks.pipeline.HookPipeline`: the compile step is
bracketed by ``pre_compile``/``post_compile`` hooks and the backend call
by ``pre_execute``/``post_execute`` hooks, identically on the
:func:`mmo_tiled` and :func:`execute_compiled` paths.  Loop-shaped entry
points (:func:`~repro.runtime.closure.closure`, batched, split-k,
multi-device, :class:`~repro.runtime.host.HostRuntime`) compile once up
front and replay the artifact per iteration via :func:`execute_compiled`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.compile.lower import build_tile_mmo_program  # noqa: F401 - compat re-export
from repro.compile.lower import compile_mmo, resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.hw.device import Simd2Device
from repro.hw.warp import ExecutionStats
from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext, resolve_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import Backend
    from repro.compile.artifact import CompiledMmo
    from repro.hooks.pipeline import Launch
    from repro.sparse.spgemm import SpgemmStats

__all__ = [
    "KernelStats",
    "OperandValidationError",
    "build_tile_mmo_program",
    "compile_in_context",
    "execute_compiled",
    "mmo_tiled",
    "mmo_tiled_split_k",
]


class OperandValidationError(RuntimeError_, ValueError):
    """An operand carries values the ring cannot combine soundly.

    Subclasses ``ValueError`` so callers catching either the runtime's
    error family or plain ``ValueError`` see the rejection.
    """


_DEFAULT_CLOCK = None


def _launch_clock(context: ExecutionContext):
    """The clock launch wall times are read on: the context's, else shared.

    Keeps a cached reference to the shared monotonic clock so the static
    fast path pays one attribute check, not an import, per launch.
    """
    clock = context.clock
    if clock is not None:
        return clock
    global _DEFAULT_CLOCK
    if _DEFAULT_CLOCK is None:
        # Lazy: repro.resilience sits above repro.runtime in the layering.
        from repro.resilience.clock import default_clock

        _DEFAULT_CLOCK = default_clock()
    return _DEFAULT_CLOCK


@dataclasses.dataclass(frozen=True)
class KernelStats:
    """Static tiling statistics of one whole-matrix mmo kernel call.

    These are the counts the paper's validation flow collects to check the
    performance-emulation backend issues exactly the expected number of
    SIMD² operations; the timing model consumes them as well.

    Convention: ``tiles_k`` is the number of inner tile steps each
    output-tile program performs — ``ceil(k / 16)`` for ``k > 0`` and ``1``
    for ``k == 0`` (a single identity-padded step the reduction absorbs).
    Degenerate calls with an empty output (``m == 0`` or ``n == 0``) report
    the same ``tiles_k`` even though no program runs, so
    ``mmo_instructions == tiles_m * tiles_n * tiles_k`` is zero there.

    Backend-specific counters ride along: ``execution`` carries the
    dynamic emulator statistics (emulate backend), ``spgemm`` the spGEMM
    work counters (sparse backend).
    """

    m: int
    n: int
    k: int
    tiles_m: int
    tiles_n: int
    tiles_k: int
    execution: ExecutionStats | None = None
    spgemm: "SpgemmStats | None" = None

    @property
    def warp_programs(self) -> int:
        """One warp program per output tile."""
        return self.tiles_m * self.tiles_n

    @property
    def mmo_instructions(self) -> int:
        return self.tiles_m * self.tiles_n * self.tiles_k

    @property
    def load_instructions(self) -> int:
        """Per program: the C tile plus an (A, B) tile pair per inner step."""
        return self.warp_programs * (1 + 2 * self.tiles_k)

    @property
    def store_instructions(self) -> int:
        return self.warp_programs

    @property
    def unit_ops(self) -> int:
        """4×4×4 unit operations: 64 per 16×16×16 warp-level mmo."""
        return self.mmo_instructions * (TILE // 4) ** 3


def compile_in_context(
    ctx: ExecutionContext,
    impl: "Backend",
    opcode: MmoOpcode,
    m: int,
    n: int,
    k: int,
    *,
    has_accumulator: bool,
    api: str = "mmo_tiled",
) -> "tuple[CompiledMmo, bool]":
    """Compile (or replay from the plan cache) through the hook pipeline.

    The single compile seam: :func:`~repro.compile.lower.compile_mmo`
    bracketed by the pipeline's ``pre_compile``/``post_compile`` hooks.
    Loop entry points that compile once up front use this too, so compile
    observers (cache metering, the future autotuner) see every lowering
    regardless of which entry point requested it.
    """
    pipeline = ctx.pipeline
    pipeline.pre_compile(ctx, api, opcode, m, n, k, has_accumulator)
    compiled, cache_hit = compile_mmo(
        impl, opcode, m, n, k, has_accumulator=has_accumulator, context=ctx
    )
    pipeline.post_compile(ctx, api, compiled, cache_hit)
    return compiled, cache_hit


def _validate_operands(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, int, int, int]:
    """Shared shape validation: ``(m,k) × (k,n) [⊕ (m,n)]``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(
            f"bad mmo operand shapes A{a.shape} x B{b.shape}"
        )
    m, k = a.shape
    n = b.shape[1]
    if c is not None:
        c = np.asarray(c)
        if c.shape != (m, n):
            # OperandValidationError is also a ValueError, so plain-ValueError
            # callers see the rejection too.
            raise OperandValidationError(
                f"accumulator shape {c.shape} != {(m, n)}: operand C must "
                f"match the A{a.shape} x B{b.shape} output"
            )
    return a, b, c, m, n, k


def _validate_ring_inputs(
    semiring: Semiring, a: np.ndarray, b: np.ndarray, c: np.ndarray | None
) -> None:
    """Reject input values that silently poison ±inf-identity rings.

    On rings whose ⊕ identity is ``±inf`` (the min/max family), the
    identity itself is legitimate data ("no edge"), but a NaN input
    propagates through every ⊕-selection and corrupts whole tiles without
    raising; for min-plus/max-plus the *oppositely*-signed infinity is
    equally poisonous, because ``⊗ = +`` maps it against identity padding
    to NaN (``-inf + inf``).  Both are rejected here, up front, with the
    offending operand named — a :class:`OperandValidationError` (also a
    ``ValueError``) instead of silently-wrong tiles.

    Rings with finite identities (plus-mul, plus-norm, or-and) accept any
    value NumPy accepts, unchanged.
    """
    identity = semiring.oplus_identity
    if isinstance(identity, bool) or np.isfinite(identity):
        return
    poison_inf = None
    if semiring.otimes is np.add:
        poison_inf = -identity  # the infinity of the opposite sign
    for name, operand in (("A", a), ("B", b), ("C", c)):
        if operand is None or not np.issubdtype(operand.dtype, np.floating):
            continue
        if np.isnan(operand).any():
            raise OperandValidationError(
                f"operand {name} contains NaN, which poisons the "
                f"{semiring.name} ring's ⊕-selection; sanitise inputs first"
            )
        if poison_inf is not None and name in ("A", "B"):
            if (operand == poison_inf).any():
                raise OperandValidationError(
                    f"operand {name} contains {poison_inf}, which maps to "
                    f"NaN against the {semiring.name} ring's "
                    f"{identity} padding (⊗ is +); sanitise inputs first"
                )


def _degenerate_result(
    semiring: Semiring, m: int, n: int, k: int, c: np.ndarray | None
) -> tuple[np.ndarray, KernelStats]:
    """The empty-output fast path (``m == 0`` or ``n == 0``)."""
    empty = (
        semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
    )
    return empty, KernelStats(m, n, k, 0, 0, ceil_div(k, TILE) if k else 1)


def _supports_compile(impl: "Backend") -> bool:
    """Whether a backend implements the compile/execute split.

    Legacy backends that registered only ``run_mmo`` keep dispatching
    through the single-shot path (no plan cache, no artifact replay).
    """
    return callable(getattr(impl, "compile", None)) and callable(
        getattr(impl, "execute", None)
    )


def _apply_selection(
    ctx: ExecutionContext,
    impl: "Backend",
    opcode: MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    *,
    api: str,
) -> "tuple[ExecutionContext, Backend, tuple[float, float]]":
    """Run a planning backend's selection stage at the dispatch seam.

    A backend exposing ``select_backend`` (the ``"auto"`` backend, see
    :mod:`repro.plan.backend`) is a *planning stage*, not an executor:
    it ranks the capable concrete backends for these operands, the
    decision is surfaced through the pipeline's ``on_plan`` channel, and
    the context is rewritten to the chosen backend — so the launch
    records, fault ordinals and autotune observations all name the
    backend that actually ran.  The rewritten context always carries an
    autotune table (the context's own or the process-wide default), so
    the selected launch's wall time feeds back into the next plan.

    Returns the plan's operand density estimates alongside so the caller
    can hand them to the launch carrier (``AutotuneHook`` then buckets
    the observation without re-estimating).  The rewritten context is
    memoised on the base context per chosen backend — a stable workload
    replans every launch but rebuilds its context (and hook pipeline)
    only on a backend change.
    """
    chosen, plan = impl.select_backend(  # type: ignore[attr-defined]
        opcode, a, b, c, context=ctx
    )
    pipeline = ctx.pipeline
    if pipeline.wants_plans:
        from repro.runtime.trace import PlanRecord

        pipeline.emit_plan(
            ctx,
            PlanRecord(
                api=api,
                backend=chosen,
                ring=plan.ring,
                opcode=plan.opcode,
                shape=plan.shape,
                density_a=plan.density_a,
                density_b=plan.density_b,
                candidates=plan.candidates,
                refined=plan.refined,
                probe=plan.probe,
                breaker_skipped=getattr(plan, "breaker_skipped", ()),
            ),
        )
    cache: dict[str, ExecutionContext] | None = ctx.__dict__.get(
        "_selection_cache"
    )
    if cache is None:
        cache = {}
        object.__setattr__(ctx, "_selection_cache", cache)
    selected = cache.get(chosen)
    if selected is None:
        overrides: dict[str, object] = {"backend": chosen}
        if ctx.autotune is None:
            from repro.plan.autotune import default_autotune_table  # lazy: plan sits above runtime

            overrides["autotune"] = default_autotune_table()
        selected = ctx.replace(**overrides)
        cache[chosen] = selected
    from repro.backends.base import get_backend  # lazy: backends import us

    return selected, get_backend(chosen), (plan.density_a, plan.density_b)


def _note_plan_densities(
    launch: "Launch | None", densities: tuple[float, float] | None
) -> None:
    """Hand the plan's density estimates to the launch carrier.

    ``AutotuneHook`` buckets its observation with these instead of
    re-estimating both operands at ``post_execute``.
    """
    if launch is None or densities is None:
        return
    if launch.notes is None:
        launch.notes = {}
    launch.notes["plan_densities"] = densities


def execute_compiled(
    compiled: "CompiledMmo",
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    context: ExecutionContext,
    api: str = "mmo_tiled",
    cache_hit: bool | None = True,
    validate_inputs: bool = True,
    fault_ordinal: int | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Replay a compiled artifact against fresh operands.

    This is the execute half of the split, used by loop-shaped entry
    points (closure iteration, batched launches, multi-device bands) that
    compile once up front: operands are validated against the artifact's
    operand-shape spec, the context's hook pipeline brackets the backend
    call (ring-input validation, fault injection, trace recording — the
    same hooks, in the same order, as :func:`mmo_tiled`), and the launch
    is recorded with ``cache_hit`` (callers pass the compile call's hit
    flag for the first iteration and ``True`` for replays).

    ``validate_inputs=False`` opts out of ring-input poison validation,
    exactly as on :func:`mmo_tiled` — loop entry points that deliberately
    iterate non-finite state (NaN fixpoints, fault studies) validate once
    up front, or not at all, and disable the per-replay check.

    ``fault_ordinal`` hands the launch a pre-reserved fault-plan ordinal
    (a :mod:`repro.sched` graph node numbered at build time); ``None``
    keeps today's claim-at-execute numbering.  Degenerate launches ignore
    it — they never claim an ordinal.

    The context must already be resolved (backend validated); the backend
    must implement ``execute``.
    """
    from repro.backends.base import (  # lazy: backends import us
        check_backend_capability,
        get_backend,
    )

    a, b, c, m, n, k = _validate_operands(a, b, c)
    opcode = compiled.opcode
    pipeline = context.pipeline
    if m == 0 or n == 0:
        launch = pipeline.begin_launch(
            context, api, opcode, a, b, c,
            validate_inputs=validate_inputs, degenerate=True,
        )
        empty, stats = _degenerate_result(opcode.semiring, m, n, k, c)
        return pipeline.finish_launch(launch, empty, stats, 0.0), stats
    compiled.validate_operands(m, n, k, has_accumulator=c is not None)
    impl = get_backend(context.backend)
    densities = None
    if callable(getattr(impl, "select_backend", None)):
        # Re-select per replay: loop entry points that compiled once under
        # backend="auto" re-plan every iteration, so closure loops migrate
        # backends as the iterate's density drifts across the crossover.
        context, impl, densities = _apply_selection(
            context, impl, opcode, a, b, c, api=api
        )
        pipeline = context.pipeline
    else:
        check_backend_capability(
            impl, opcode.semiring, has_accumulator=c is not None
        )

    launch = pipeline.begin_launch(
        context, api, opcode, a, b, c,
        validate_inputs=validate_inputs,
        cache_hit=cache_hit,
        optimizer_removed=compiled.optimizer_removed,
        fault_ordinal=fault_ordinal,
    )
    _note_plan_densities(launch, densities)
    clock = _launch_clock(context)
    start = clock.now()
    result, stats = impl.execute(compiled, a, b, c, context=context)
    elapsed = clock.now() - start
    return pipeline.finish_launch(launch, result, stats, elapsed), stats


def mmo_tiled(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
    api: str = "mmo_tiled",
    validate_inputs: bool = True,
    fault_ordinal: int | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Whole-matrix ``D = C ⊕ (A ⊗ B)`` with implicit 16×16 tiling.

    Parameters
    ----------
    ring:
        Semiring, semiring name, or mmo opcode.
    a, b, c:
        ``(m, k)``, ``(k, n)`` and optional ``(m, n)`` matrices.
    backend:
        Registry name of the execution backend (``"vectorized"``,
        ``"emulate"``, ``"sparse"``, or anything registered).  ``None``
        defers to the ambient :func:`~repro.runtime.context
        .default_context` (whose default is ``"vectorized"``).
    device:
        Device for device-oriented backends (``"emulate"``); carried in
        the context and ignored by backends that do not emulate hardware.
    context:
        Explicit :class:`~repro.runtime.context.ExecutionContext`; the
        ``backend``/``device`` keywords override its fields when given.
    api:
        Label recorded in trace records (entry points pass their name).
    validate_inputs:
        Reject value-poisoned operands (NaN, and oppositely-signed inf on
        min-plus/max-plus) with a :class:`OperandValidationError` before
        launching — see :func:`_validate_ring_inputs`.  Loop entry points
        that deliberately iterate non-finite state may disable it.
    fault_ordinal:
        Pre-reserved fault-plan ordinal for this launch (graph nodes are
        numbered at build time by :mod:`repro.sched`); ``None`` claims
        the next ordinal at execute time as before.

    Returns
    -------
    (D, KernelStats)
        The result cropped to ``(m, n)`` plus tiling statistics (with
        dynamic :class:`ExecutionStats` attached for the emulate backend
        and :class:`~repro.sparse.spgemm.SpgemmStats` for the sparse one).
    """
    opcode = resolve_opcode(ring)
    semiring = opcode.semiring
    a, b, c, m, n, k = _validate_operands(a, b, c)

    # Resolve + validate the backend once, up front — even for degenerate
    # shapes, so a typo (or a capability violation) fails identically on
    # every input.
    ctx = resolve_context(context, backend=backend, device=device)
    from repro.backends.base import (  # lazy: backends import us
        check_backend_capability,
        get_backend,
    )

    impl = get_backend(ctx.backend)
    planning = callable(getattr(impl, "select_backend", None))
    if not planning:
        check_backend_capability(impl, semiring, has_accumulator=c is not None)
    pipeline = ctx.pipeline

    if m == 0 or n == 0:
        launch = pipeline.begin_launch(
            ctx, api, opcode, a, b, c,
            validate_inputs=validate_inputs, degenerate=True,
        )
        empty, stats = _degenerate_result(semiring, m, n, k, c)
        return pipeline.finish_launch(launch, empty, stats, 0.0), stats

    densities = None
    if planning:
        # Planning backends select per launch; the empty-output path above
        # never reaches here (nothing runs, so there is nothing to plan).
        ctx, impl, densities = _apply_selection(ctx, impl, opcode, a, b, c, api=api)
        pipeline = ctx.pipeline

    if _supports_compile(impl):
        compiled, hit = compile_in_context(
            ctx, impl, opcode, m, n, k, has_accumulator=c is not None, api=api
        )
        launch = pipeline.begin_launch(
            ctx, api, opcode, a, b, c,
            validate_inputs=validate_inputs,
            cache_hit=hit,
            optimizer_removed=compiled.optimizer_removed,
            fault_ordinal=fault_ordinal,
        )
        _note_plan_densities(launch, densities)
        clock = _launch_clock(ctx)
        start = clock.now()
        result, stats = impl.execute(compiled, a, b, c, context=ctx)
        elapsed = clock.now() - start
        return pipeline.finish_launch(launch, result, stats, elapsed), stats

    # Legacy single-shot path: backends registered with only run_mmo.
    launch = pipeline.begin_launch(
        ctx, api, opcode, a, b, c,
        validate_inputs=validate_inputs,
        fault_ordinal=fault_ordinal,
    )
    _note_plan_densities(launch, densities)
    clock = _launch_clock(ctx)
    start = clock.now()
    result, stats = impl.run_mmo(opcode, a, b, c, context=ctx)
    elapsed = clock.now() - start
    return pipeline.finish_launch(launch, result, stats, elapsed), stats


def mmo_tiled_split_k(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    splits: int = 2,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
    validate_inputs: bool = True,
) -> tuple[np.ndarray, list[KernelStats]]:
    """Split-k scheduling: partition the inner dimension across kernels.

    Deep reductions limit parallelism when the ``m×n`` tile grid is small;
    GPUs then split k across concurrent kernels, each producing a partial
    result, and combine the partials — valid for *every* SIMD² ring since
    ⊕ is associative and commutative (the same property the reduction tree
    relies on).  The accumulator ``C`` is folded in exactly once, and its
    shape is validated up front so a bad ``C`` fails before any kernel
    runs (exactly like :func:`mmo_tiled`).  Ring-input poison validation
    likewise runs **once** over the full operands up front (one scan, not
    one per split) and is disabled on the per-split launches; pass
    ``validate_inputs=False`` to opt out entirely, as on
    :func:`mmo_tiled`.

    Zero-width partitions (possible when ``splits`` exceeds ``k``, e.g.
    for ``k == 0``) are skipped rather than launched as ``k = 0``
    kernels; when every partition is empty the whole call degenerates to
    a single ``k = 0`` launch.  Equal-width partitions share one
    compiled artifact through the context's plan cache.

    The partial launches and the pinned ⊕ fold are built as a
    :class:`~repro.sched.graph.LaunchGraph` and run by the context's
    scheduler — the partials are independent nodes, so a thread-pool
    scheduler runs them concurrently with bit-identical results.

    Returns the combined result and per-split kernel statistics.
    """
    opcode = resolve_opcode(ring)
    semiring = opcode.semiring
    if splits <= 0:
        raise RuntimeError_(f"splits must be positive, got {splits}")
    a, b, c, m, n, k = _validate_operands(a, b, c)
    if validate_inputs:
        _validate_ring_inputs(semiring, a, b, c)
    if c is not None:
        c = np.asarray(c, dtype=semiring.output_dtype)
    splits = min(splits, k) if k else 1
    ctx = resolve_context(context, backend=backend, device=device)

    # Lazy: repro.sched orchestrates this module's kernels.
    from repro.sched.builders import split_k_graph
    from repro.sched.executor import resolve_scheduler

    graph, out_ref, launch_refs = split_k_graph(
        ctx, opcode, a, b, c, splits=splits
    )
    result = resolve_scheduler(ctx).run(graph, context=ctx)
    stats_list = [result.stats_of(ref) for ref in launch_refs]
    combined = np.asarray(result[out_ref])
    return combined, stats_list
