"""Matrix-vector semiring operations and single-source algorithms.

All-pairs problems map onto mmo tiles; their *single-source* siblings map
onto ``y = y ⊕ (x ⊗ A)`` — one fragment row against the matrix, the
GraphBLAS ``vxm`` pattern.  On SIMD² hardware a vector op runs as a 1×16
slice of a fragment (utilisation is poor, which is exactly why the paper
targets all-pairs formulations), but the *algebra* is identical; this
module provides it for completeness and for validating the all-pairs
results row by row:

- :func:`vxm` — one relaxation step,
- :func:`sssp` — single-source shortest paths (min-plus Bellman-Ford),
- :func:`reachable_from` — single-source reachability (or-and).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.core.precision import quantize_input

__all__ = ["VectorResult", "vxm", "sssp", "reachable_from"]


@dataclasses.dataclass(frozen=True)
class VectorResult:
    """Outcome of a single-source iteration."""

    values: np.ndarray
    iterations: int
    converged: bool


def vxm(
    ring: Semiring | str,
    x: np.ndarray,
    a: np.ndarray,
    y: np.ndarray | None = None,
) -> np.ndarray:
    """``y ⊕ (x ⊗ A)`` — one vector-matrix semiring product.

    ``x`` is a length-``k`` vector, ``a`` is ``k×n``; the result has
    length ``n``.  ``y`` defaults to the ⊕ identity.
    """
    ring = get_semiring(ring)
    x = np.asarray(x)
    a = np.asarray(a)
    if x.ndim != 1 or a.ndim != 2 or x.shape[0] != a.shape[0]:
        raise SemiringError(
            f"vxm shapes mismatch: x{x.shape} with A{a.shape}"
        )
    x16 = quantize_input(x, ring).astype(ring.output_dtype)
    a16 = quantize_input(a, ring).astype(ring.output_dtype)
    with np.errstate(invalid="ignore"):
        products = ring.otimes(x16[:, None], a16)
    products = np.asarray(products, dtype=ring.output_dtype)
    if not ring.is_boolean():
        identity = np.asarray(ring.oplus_identity, dtype=ring.output_dtype)
        missing = (x16[:, None] == identity) | (a16 == identity) | np.isnan(products)
        np.copyto(products, identity, where=missing)
    reduced = ring.reduce(products, axis=0)
    if y is None:
        return reduced
    y = np.asarray(y, dtype=ring.output_dtype)
    if y.shape != reduced.shape:
        raise SemiringError(f"accumulator shape {y.shape} != {reduced.shape}")
    return np.asarray(ring.oplus(y, reduced), dtype=ring.output_dtype)


def _single_source(
    ring_name: str,
    adjacency: np.ndarray,
    source: int,
    source_value,
    *,
    max_iterations: int | None,
) -> VectorResult:
    ring = get_semiring(ring_name)
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise SemiringError(f"adjacency must be square, got {adjacency.shape}")
    n = adjacency.shape[0]
    if not (0 <= source < n):
        raise SemiringError(f"source {source} out of range for {n} vertices")
    frontier = ring.full((n,))
    frontier[source] = source_value
    limit = max_iterations if max_iterations is not None else n
    if limit <= 0:
        raise SemiringError(f"max_iterations must be positive, got {limit}")

    converged = False
    iterations = 0
    for _ in range(limit):
        updated = vxm(ring, frontier, adjacency, frontier)
        iterations += 1
        if np.array_equal(updated, frontier):
            converged = True
            frontier = updated
            break
        frontier = updated
    return VectorResult(values=frontier, iterations=iterations, converged=converged)


def sssp(
    adjacency: np.ndarray, source: int, *, max_iterations: int | None = None
) -> VectorResult:
    """Single-source shortest paths: min-plus Bellman-Ford over vxm.

    ``adjacency`` uses the min-plus encoding (+inf non-edges, 0 diagonal);
    the result's ``values[v]`` is the distance from ``source`` to ``v`` —
    row ``source`` of the all-pairs closure (asserted in tests).
    """
    return _single_source(
        "min-plus", adjacency, source, 0.0, max_iterations=max_iterations
    )


def reachable_from(
    adjacency: np.ndarray, source: int, *, max_iterations: int | None = None
) -> VectorResult:
    """Single-source reachability: or-and frontier expansion."""
    adjacency = np.asarray(adjacency)
    if adjacency.dtype != np.dtype(bool):
        raise SemiringError(f"adjacency must be boolean, got dtype {adjacency.dtype}")
    return _single_source(
        "or-and", adjacency, source, True, max_iterations=max_iterations
    )
