"""Ambient execution configuration: one object instead of loose keywords.

Every dispatch decision the runtime used to thread by hand — which backend
runs the mmo, which emulated device it runs on, whether the device fans
warps across threads, where launch records go — lives in one immutable
:class:`ExecutionContext`.  A context variable supplies the ambient
default, so the three ways of configuring a run compose cleanly:

- **ambient**: ``with use_context(backend="sparse"): apsp(graph)`` — every
  launch underneath routes through the sparse backend, no signature
  changes anywhere;
- **explicit**: pass ``context=ExecutionContext(...)`` to any runtime
  entry point;
- **legacy keywords**: ``backend="emulate"``/``device=dev`` keep working —
  they are folded into the resolved context by :func:`resolve_context`.

Backend names are validated here, once, against the registry in
:mod:`repro.backends` — every entry point fails fast with the list of
registered backends instead of deep in the stack.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.cache import PlanCache
    from repro.hooks.pipeline import Hook, HookPipeline
    from repro.hw.device import Simd2Device
    from repro.plan.autotune import AutotuneTable
    from repro.resilience.breaker import BreakerBoard
    from repro.resilience.budget import ExecutionBudget
    from repro.resilience.cancel import CancellationToken
    from repro.resilience.clock import Clock
    from repro.resilience.faults import FaultPlan
    from repro.runtime.trace import Trace
    from repro.sched.executor import Scheduler

__all__ = [
    "ExecutionContext",
    "default_context",
    "resolve_context",
    "use_context",
]


@dataclasses.dataclass(frozen=True)
class ExecutionContext:
    """Everything the dispatch layer needs to know to run one launch.

    Parameters
    ----------
    backend:
        Registry name of the backend that runs mmos (``"vectorized"``,
        ``"emulate"``, ``"sparse"``, or anything registered via
        :func:`repro.backends.register_backend`).
    device:
        Emulated device for device-oriented backends.  Backends that do
        not emulate hardware ignore it, so it is always safe to carry —
        this replaces the per-call-site "pass the device only when
        emulating" branching the runtime used to copy around.
    parallel:
        When a backend has to create a device on the fly, fan warps
        across one worker thread per SM.
    trace:
        Optional :class:`~repro.runtime.trace.Trace` sink; when set,
        every launch under this context appends a ``LaunchRecord``.
    plan_cache:
        :class:`~repro.compile.cache.PlanCache` the dispatch layer
        memoizes compiled artifacts in.  ``None`` (the default) means the
        process-wide shared cache
        (:func:`repro.compile.cache.default_plan_cache`); pass a private
        cache to isolate a workload's hit/miss counters, or
        ``PlanCache(maxsize=0)`` to disable memoization entirely.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`.  When set,
        the dispatch layer consults it at the execute boundary: scheduled
        launches are dropped or their outputs corrupted deterministically,
        and the multi-device partitioner hard-fails the planned devices.
        ``None`` (the default) injects nothing and costs nothing.
    hooks:
        Custom :class:`~repro.hooks.pipeline.Hook` instances (or registry
        names, see :func:`repro.hooks.register_hook`) appended to the
        built-in pipeline.  The built-in trace/fault/validation hooks are
        implied by the ``trace``/``fault_plan`` fields and need not be
        listed here.
    autotune:
        :class:`~repro.plan.autotune.AutotuneTable` the planner refines
        its rankings from, filled by the autotune hook at the execute
        seam.  ``None`` (the default) means the process-wide shared table
        (:func:`repro.plan.autotune.default_autotune_table`) *when the
        context is adaptive* (``backend="auto"``); pass a private table
        to isolate a workload's observations.  Setting the field on a
        static-backend context opts that context's launches into feeding
        the table too.
    scheduler:
        :class:`~repro.sched.executor.Scheduler` that runs the launch
        graphs the loop-shaped entry points build (closure iterations,
        batch items, split-k partials, multi-device bands).  ``None``
        (the default) means the serial executor — node-at-a-time in
        build order, bit-identical to the pre-graph dispatch; pass
        :class:`~repro.sched.executor.ThreadPoolExecutor` to run
        independent nodes concurrently (results stay bit-identical:
        fold orders are pinned in the graph and fault ordinals are
        assigned at build time).
    clock:
        Injectable :class:`~repro.resilience.clock.Clock` behind every
        time read and sleep under this context (launch wall times,
        deadline charges, retry backoff).  ``None`` (the default) means
        the shared real monotonic clock; tests and chaos runs pass a
        :class:`~repro.resilience.clock.VirtualClock` so time-dependent
        behaviour replays deterministically.
    budget:
        Optional :class:`~repro.resilience.budget.ExecutionBudget`.
        When set, every launch is charged at the ``begin_launch`` hook
        seam and both schedulers check the deadline between node
        dispatches; exhaustion raises the typed
        :class:`~repro.resilience.budget.DeadlineExceeded` /
        :class:`~repro.resilience.budget.BudgetExhausted` carrying
        partial-progress diagnostics.  ``None`` costs nothing.
    cancel:
        Optional :class:`~repro.resilience.cancel.CancellationToken`.
        When set, both schedulers check it between node submissions:
        in-flight nodes drain, pending nodes never start, and the run
        raises :class:`~repro.resilience.cancel.OperationCancelled`
        reporting exactly which node indices completed.  ``None`` costs
        nothing.
    breakers:
        Optional :class:`~repro.resilience.breaker.BreakerBoard` of
        per-backend circuit breakers.  When set,
        :func:`~repro.resilience.policy.resilient_mmo` and the
        ``"auto"`` planner skip open backends (half-open probe launches
        recover them), fed by failure events through the hook pipeline.
        ``None`` costs nothing.
    """

    backend: str = "vectorized"
    device: "Simd2Device | None" = None
    parallel: bool = False
    trace: "Trace | None" = None
    plan_cache: "PlanCache | None" = None
    fault_plan: "FaultPlan | None" = None
    hooks: "tuple[Hook | str, ...]" = ()
    autotune: "AutotuneTable | None" = None
    scheduler: "Scheduler | None" = None
    clock: "Clock | None" = None
    budget: "ExecutionBudget | None" = None
    cancel: "CancellationToken | None" = None
    breakers: "BreakerBoard | None" = None

    def replace(self, **overrides) -> "ExecutionContext":
        """A copy with the given fields replaced (context is immutable)."""
        return dataclasses.replace(self, **overrides)

    @property
    def pipeline(self) -> "HookPipeline":
        """The lifecycle hook pipeline this context's fields imply.

        Assembled lazily on first access and cached on the instance (the
        dataclass is frozen but not slotted, so ``object.__setattr__``
        can stash the derived pipeline without widening the equality or
        hash contract — ``__eq__``/``__hash__`` only see declared
        fields).  Every runtime entry point dispatches through this one
        pipeline instead of hand-threading trace/fault/validation.
        """
        pipe = self.__dict__.get("_pipeline")
        if pipe is None:
            from repro.hooks.pipeline import build_pipeline

            pipe = build_pipeline(self)
            object.__setattr__(self, "_pipeline", pipe)
        return pipe


#: Ambient context; ``None`` means "nothing installed, use the fallback".
_CURRENT: contextvars.ContextVar["ExecutionContext | None"] = contextvars.ContextVar(
    "simd2_execution_context", default=None
)
_FALLBACK = ExecutionContext()


def _validate_backend(name: str) -> None:
    # Late import: repro.backends depends on repro.runtime, not vice versa.
    from repro.backends.base import get_backend

    get_backend(name)


def default_context() -> ExecutionContext:
    """The ambient context (installed by :func:`use_context`, else defaults)."""
    current = _CURRENT.get()
    return current if current is not None else _FALLBACK


def resolve_context(
    context: "ExecutionContext | None" = None,
    /,
    *,
    backend: str | None = None,
    device: "Simd2Device | None" = None,
    parallel: bool | None = None,
    trace: "Trace | None" = None,
    plan_cache: "PlanCache | None" = None,
    fault_plan: "FaultPlan | None" = None,
    hooks: "tuple[Hook | str, ...] | None" = None,
    autotune: "AutotuneTable | None" = None,
    scheduler: "Scheduler | None" = None,
    clock: "Clock | None" = None,
    budget: "ExecutionBudget | None" = None,
    cancel: "CancellationToken | None" = None,
    breakers: "BreakerBoard | None" = None,
) -> ExecutionContext:
    """Fold legacy keywords over a base context and validate the backend.

    ``context`` defaults to the ambient context; each non-``None`` keyword
    overrides the corresponding field.  This is the single place the
    runtime entry points turn their keyword shims into a context, so the
    backend name is checked exactly once per call, up front.
    """
    resolved = context if context is not None else default_context()
    overrides: dict[str, object] = {}
    if backend is not None:
        overrides["backend"] = backend
    if device is not None:
        overrides["device"] = device
    if parallel is not None:
        overrides["parallel"] = parallel
    if trace is not None:
        overrides["trace"] = trace
    if plan_cache is not None:
        overrides["plan_cache"] = plan_cache
    if fault_plan is not None:
        overrides["fault_plan"] = fault_plan
    if hooks is not None:
        overrides["hooks"] = tuple(hooks)
    if autotune is not None:
        overrides["autotune"] = autotune
    if scheduler is not None:
        overrides["scheduler"] = scheduler
    if clock is not None:
        overrides["clock"] = clock
    if budget is not None:
        overrides["budget"] = budget
    if cancel is not None:
        overrides["cancel"] = cancel
    if breakers is not None:
        overrides["breakers"] = breakers
    if overrides:
        resolved = dataclasses.replace(resolved, **overrides)
    _validate_backend(resolved.backend)
    return resolved


@contextlib.contextmanager
def use_context(
    context: "ExecutionContext | None" = None, /, **overrides
) -> Iterator[ExecutionContext]:
    """Install an ambient context for the dynamic extent of the block.

    >>> with use_context(backend="sparse", trace=Trace()) as ctx:
    ...     apsp(graph)                 # routes through spGEMM, traced
    ...     ctx.trace.summary()

    Field overrides apply on top of ``context`` (or the current ambient
    context when omitted), and the backend name is validated eagerly so a
    typo fails at the ``with`` statement, not at the first launch.
    """
    base = context if context is not None else default_context()
    installed = dataclasses.replace(base, **overrides) if overrides else base
    _validate_backend(installed.backend)
    token = _CURRENT.set(installed)
    try:
        yield installed
    finally:
        _CURRENT.reset(token)
