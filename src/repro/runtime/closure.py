"""Semiring closure iteration — the host-side loop of the paper's Figure 7.

Graph problems solved with SIMD² iterate a whole-matrix mmo until a
fixpoint.  The paper discusses three iteration policies (Sections 4, 6.4):

- **All-pairs Bellman-Ford**: ``D ← D ⊕ (D ⊗ A)`` — one relaxation per
  step; needs up to ``|V|`` iterations (the graph diameter with a
  convergence check).
- **Leyzorek's algorithm**: ``D ← D ⊕ (D ⊗ D)`` — repeated squaring;
  needs at most ``⌈log₂|V|⌉`` iterations (``⌈log₂ diameter⌉`` with a
  convergence check).
- either of the above **with a convergence check**: a CUDA-core
  element-wise comparison after every mmo that terminates the loop as
  soon as the matrix stops changing.

:func:`closure` implements all three and reports iteration/mmo statistics,
which both the applications (for validation) and the timing model (for
Figures 11–12) consume.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.compile.lower import compile_mmo, resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.hw.device import Simd2Device
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import KernelStats, execute_compiled, mmo_tiled

__all__ = ["ClosureResult", "closure", "max_iterations_for"]


@dataclasses.dataclass(frozen=True)
class ClosureResult:
    """Outcome of a closure iteration."""

    matrix: np.ndarray
    iterations: int
    converged: bool
    method: str
    mmo_calls: int
    convergence_checks: int
    kernel_stats: tuple[KernelStats, ...]

    @property
    def total_mmo_instructions(self) -> int:
        return sum(stats.mmo_instructions for stats in self.kernel_stats)


def max_iterations_for(method: str, num_vertices: int) -> int:
    """Worst-case iteration bound per iteration policy (paper Section 6.4)."""
    if num_vertices <= 1:
        return 1
    if method == "bellman-ford":
        return num_vertices
    if method == "leyzorek":
        return max(1, math.ceil(math.log2(num_vertices)))
    raise SemiringError(f"unknown closure method {method!r}")


def closure(
    ring: Semiring | str,
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    max_iterations: int | None = None,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
) -> ClosureResult:
    """Iterate ``D ← D ⊕ (D ⊗ X)`` to a fixpoint under ``ring``.

    Parameters
    ----------
    ring:
        The semiring (e.g. ``"min-plus"`` for shortest paths).
    adjacency:
        The initial matrix ``D₀`` — typically the adjacency matrix with
        the problem's "self" value on the diagonal (0 for min-plus).
        Must be square.
    method:
        ``"leyzorek"`` (squaring, ``X = D``) or ``"bellman-ford"``
        (relaxation, ``X = D₀``).
    convergence_check:
        Stop as soon as an iteration leaves the matrix unchanged.  Costs
        one element-wise comparison per iteration (a pure CUDA-core
        kernel in the paper), which the result records.
    max_iterations:
        Iteration cap; defaults to the method's worst case for the given
        vertex count.
    backend / device / context:
        Execution configuration, resolved once up front (so an unknown
        backend fails before any iteration) and forwarded to
        :func:`~repro.runtime.kernels.mmo_tiled`; ``backend=None`` defers
        to the ambient :func:`~repro.runtime.context.default_context`.

    Returns
    -------
    ClosureResult
        Final matrix plus iteration and instruction statistics.
    """
    ring = get_semiring(ring)
    ctx = resolve_context(context, backend=backend, device=device)
    current = np.asarray(adjacency, dtype=ring.output_dtype)
    if current.ndim != 2 or current.shape[0] != current.shape[1]:
        raise SemiringError(
            f"closure needs a square matrix, got shape {current.shape}"
        )
    n = current.shape[0]
    if max_iterations is not None:
        limit = max_iterations
    else:
        # With a convergence check the loop runs until the matrix stops
        # changing; one extra iteration is needed to *observe* the fixpoint.
        limit = max_iterations_for(method, n) + (1 if convergence_check else 0)
    if limit <= 0:
        raise SemiringError(f"max_iterations must be positive, got {limit}")
    if method not in ("leyzorek", "bellman-ford"):
        raise SemiringError(f"unknown closure method {method!r}")

    base = current.copy()
    converged = False
    iterations = 0
    checks = 0
    all_stats: list[KernelStats] = []

    # Every iteration launches the same (n, n, n)-with-accumulator shape, so
    # compile once up front and replay the artifact per iteration.  The first
    # launch reports the compile call's hit flag (a miss on a cold cache),
    # every replay a hit — the one-miss-then-hits signature of the split.
    from repro.backends.base import get_backend  # lazy: backends import us

    impl = get_backend(ctx.backend)
    compiled = None
    first_hit: bool | None = None
    if n > 0 and callable(getattr(impl, "compile", None)):
        opcode = resolve_opcode(ring)
        compiled, first_hit = compile_mmo(
            impl, opcode, n, n, n, has_accumulator=True, context=ctx
        )

    for _ in range(limit):
        operand = current if method == "leyzorek" else base
        if compiled is not None:
            updated, stats = execute_compiled(
                compiled, current, operand, current,
                context=ctx, api="closure",
                cache_hit=first_hit if iterations == 0 else True,
            )
        else:
            updated, stats = mmo_tiled(
                ring, current, operand, current, context=ctx, api="closure"
            )
        all_stats.append(stats)
        iterations += 1
        if convergence_check:
            checks += 1
            if np.array_equal(updated, current):
                current = updated
                converged = True
                break
        current = updated

    return ClosureResult(
        matrix=current,
        iterations=iterations,
        converged=converged,
        method=method,
        mmo_calls=len(all_stats),
        convergence_checks=checks,
        kernel_stats=tuple(all_stats),
    )
