"""Semiring closure iteration — the host-side loop of the paper's Figure 7.

Graph problems solved with SIMD² iterate a whole-matrix mmo until a
fixpoint.  The paper discusses three iteration policies (Sections 4, 6.4):

- **All-pairs Bellman-Ford**: ``D ← D ⊕ (D ⊗ A)`` — one relaxation per
  step; needs up to ``|V|`` iterations (the graph diameter with a
  convergence check).
- **Leyzorek's algorithm**: ``D ← D ⊕ (D ⊗ D)`` — repeated squaring;
  needs at most ``⌈log₂|V|⌉`` iterations (``⌈log₂ diameter⌉`` with a
  convergence check).
- either of the above **with a convergence check**: a CUDA-core
  element-wise comparison after every mmo that terminates the loop as
  soon as the matrix stops changing.

:func:`closure` implements all three and reports iteration/mmo statistics,
which both the applications (for validation) and the timing model (for
Figures 11–12) consume.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.compile.lower import resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring, SemiringError
from repro.hooks.pipeline import emit_event
from repro.hw.device import Simd2Device
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import KernelStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.watchdog import ClosureDiagnostics, ClosureWatchdog

__all__ = ["ClosureResult", "closure", "matrices_equal", "max_iterations_for"]


def matrices_equal(x: np.ndarray, y: np.ndarray) -> bool:
    """Whole-matrix equality with ``NaN == NaN`` semantics.

    The convergence check must treat a NaN fixpoint as a fixpoint —
    plain ``np.array_equal`` has ``NaN != NaN`` and would spin a
    NaN-poisoned closure to its iteration cap.  Boolean matrices (or-and)
    take the plain path, where ``equal_nan`` is meaningless.
    """
    x = np.asarray(x)
    if np.issubdtype(x.dtype, np.floating):
        return bool(np.array_equal(x, y, equal_nan=True))
    return bool(np.array_equal(x, y))


@dataclasses.dataclass(frozen=True)
class ClosureResult:
    """Outcome of a closure iteration.

    ``diagnostics`` is ``None`` unless a watchdog observed the run (a
    healthy summary when the loop completed normally, or the structured
    reason — NaN poisoning, non-monotone progress, oscillation — when
    the watchdog terminated it early) or a budget brownout stopped it
    (``reason="budget_exhausted"``); in both early-stop cases
    ``converged`` is False.
    """

    matrix: np.ndarray
    iterations: int
    converged: bool
    method: str
    mmo_calls: int
    convergence_checks: int
    kernel_stats: tuple[KernelStats, ...]
    diagnostics: "ClosureDiagnostics | None" = None

    @property
    def total_mmo_instructions(self) -> int:
        return sum(stats.mmo_instructions for stats in self.kernel_stats)


def max_iterations_for(method: str, num_vertices: int) -> int:
    """Worst-case iteration bound per iteration policy (paper Section 6.4)."""
    if num_vertices <= 1:
        return 1
    if method == "bellman-ford":
        return num_vertices
    if method == "leyzorek":
        return max(1, math.ceil(math.log2(num_vertices)))
    raise SemiringError(f"unknown closure method {method!r}")


def closure(
    ring: Semiring | str,
    adjacency: np.ndarray,
    *,
    method: str = "leyzorek",
    convergence_check: bool = True,
    max_iterations: int | None = None,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
    watchdog: "bool | ClosureWatchdog" = False,
    validate_inputs: bool = False,
    bands: int = 1,
    on_budget: str = "raise",
) -> ClosureResult:
    """Iterate ``D ← D ⊕ (D ⊗ X)`` to a fixpoint under ``ring``.

    Parameters
    ----------
    ring:
        The semiring (e.g. ``"min-plus"`` for shortest paths).
    adjacency:
        The initial matrix ``D₀`` — typically the adjacency matrix with
        the problem's "self" value on the diagonal (0 for min-plus).
        Must be square.
    method:
        ``"leyzorek"`` (squaring, ``X = D``) or ``"bellman-ford"``
        (relaxation, ``X = D₀``).
    convergence_check:
        Stop as soon as an iteration leaves the matrix unchanged.  Costs
        one element-wise comparison per iteration (a pure CUDA-core
        kernel in the paper), which the result records.
    max_iterations:
        Iteration cap; defaults to the method's worst case for the given
        vertex count.
    backend / device / context:
        Execution configuration, resolved once up front (so an unknown
        backend fails before any iteration) and forwarded to
        :func:`~repro.runtime.kernels.mmo_tiled`; ``backend=None`` defers
        to the ambient :func:`~repro.runtime.context.default_context`.
    watchdog:
        ``True`` (or a configured
        :class:`~repro.resilience.watchdog.ClosureWatchdog`) observes
        every iterate for NaN poisoning, non-monotone progress on
        idempotent rings, and oscillation; on detection the loop
        terminates with the structured diagnosis on
        ``ClosureResult.diagnostics`` (and a ``watchdog`` trace event)
        instead of burning the iteration cap.
    validate_inputs:
        Closures legitimately iterate non-finite state — ``±inf`` "no
        edge" entries are data, and a NaN fixpoint must still converge —
        so per-iteration ring-input validation is **off** by default
        (the watchdog is the in-loop poison detector).  Pass ``True`` to
        reject a NaN / oppositely-signed-inf *initial* adjacency on the
        first launch before iterating.
    bands:
        Partition each iteration's output rows into this many
        tile-aligned bands — independent launch nodes in the iteration's
        :class:`~repro.sched.graph.LaunchGraph`, which a thread-pool
        scheduler on the context runs concurrently.  Results are
        bit-identical for any band count (bands write disjoint rows).
        The default ``1`` keeps one whole-matrix launch per iteration.
    on_budget:
        What to do when the context's
        :class:`~repro.resilience.budget.ExecutionBudget` trips mid-run.
        ``"raise"`` (the default) propagates the typed
        :class:`~repro.resilience.budget.DeadlineExceeded` /
        :class:`~repro.resilience.budget.BudgetExhausted`.
        ``"brownout"`` degrades instead: the loop stops at the last
        completed iterate and returns it as a best-effort partial
        fixpoint, flagged via ``ClosureResult.diagnostics``
        (``healthy=False``, ``reason="budget_exhausted"``) and a
        ``brownout`` trace event — ``converged`` stays ``False`` so
        callers cannot mistake the brownout for a fixpoint.

    Returns
    -------
    ClosureResult
        Final matrix plus iteration and instruction statistics.
    """
    ring = get_semiring(ring)
    ctx = resolve_context(context, backend=backend, device=device)
    current = np.asarray(adjacency, dtype=ring.output_dtype)
    if current.ndim != 2 or current.shape[0] != current.shape[1]:
        raise SemiringError(
            f"closure needs a square matrix, got shape {current.shape}"
        )
    n = current.shape[0]
    if max_iterations is not None:
        limit = max_iterations
    else:
        # With a convergence check the loop runs until the matrix stops
        # changing; one extra iteration is needed to *observe* the fixpoint.
        limit = max_iterations_for(method, n) + (1 if convergence_check else 0)
    if limit <= 0:
        raise SemiringError(f"max_iterations must be positive, got {limit}")
    if method not in ("leyzorek", "bellman-ford"):
        raise SemiringError(f"unknown closure method {method!r}")
    if bands <= 0:
        raise SemiringError(f"bands must be positive, got {bands}")
    if on_budget not in ("raise", "brownout"):
        raise SemiringError(
            f"on_budget must be 'raise' or 'brownout', got {on_budget!r}"
        )

    guard: "ClosureWatchdog | None" = None
    if watchdog:
        if watchdog is True:
            # Lazy import: repro.resilience imports the runtime package.
            from repro.resilience.watchdog import ClosureWatchdog

            guard = ClosureWatchdog(ring)
        else:
            guard = watchdog

    base = current.copy()
    converged = False
    iterations = 0
    checks = 0
    diagnostics: "ClosureDiagnostics | None" = None
    all_stats: list[KernelStats] = []

    # Each iteration lowers onto a LaunchGraph (band launches + optional
    # convergence-check node) run by the context's scheduler.  The
    # ArtifactPool persists across iterations, so the first launch of
    # each band shape reports the compile call's hit flag (a miss on a
    # cold cache) and every replay a hit — the one-miss-then-hits
    # signature of the compile/execute split.
    # Lazy: repro.sched orchestrates this module's loops.
    from repro.sched.builders import ArtifactPool, closure_step_graph
    from repro.sched.executor import resolve_scheduler

    opcode = resolve_opcode(ring)
    pool = ArtifactPool(ctx, "closure")
    scheduler = resolve_scheduler(ctx)

    for _ in range(limit):
        operand = current if method == "leyzorek" else base
        # Only the first launch sees the caller's validate_inputs choice;
        # replays iterate whatever the ring produced (NaN fixpoints and
        # injected faults included — the watchdog owns in-loop detection).
        validate = validate_inputs and iterations == 0
        graph, out_ref, check_ref, launch_refs = closure_step_graph(
            ctx, pool, opcode, current, operand,
            bands=bands, convergence_check=convergence_check,
            validate_inputs=validate,
        )
        if on_budget == "brownout":
            # Lazy: repro.resilience imports the runtime package.
            from repro.resilience.budget import BudgetError
            from repro.resilience.watchdog import ClosureDiagnostics

            try:
                step = scheduler.run(graph, context=ctx)
            except BudgetError as exc:
                # Best-effort degradation: keep the last completed
                # iterate as the partial fixpoint and flag it, instead
                # of discarding the work already paid for.
                diagnostics = ClosureDiagnostics(
                    healthy=False,
                    reason="budget_exhausted",
                    iteration=iterations,
                    detail=str(exc),
                )
                emit_event(
                    ctx,
                    kind="brownout",
                    api="closure",
                    detail=diagnostics.describe(),
                )
                break
        else:
            step = scheduler.run(graph, context=ctx)
        updated = np.asarray(step[out_ref])
        for ref in launch_refs:
            all_stats.append(step.stats_of(ref))
        iterations += 1
        if guard is not None:
            diagnostics = guard.observe(updated, current, iterations)
            if diagnostics is not None:
                current = updated
                emit_event(
                    ctx,
                    kind="watchdog",
                    api="closure",
                    detail=diagnostics.describe(),
                )
                break
        if convergence_check:
            checks += 1
            # NaN-safe: a NaN fixpoint is still a fixpoint (NaN != NaN
            # under np.array_equal would spin to the iteration cap).
            if check_ref is not None and bool(step[check_ref]):
                current = updated
                converged = True
                break
        current = updated

    if guard is not None and diagnostics is None:
        from repro.resilience.watchdog import ClosureDiagnostics

        diagnostics = ClosureDiagnostics(
            healthy=True, reason=None, iteration=iterations,
            detail="no poisoning, regression, or oscillation observed",
        )
    return ClosureResult(
        matrix=current,
        iterations=iterations,
        converged=converged,
        method=method,
        mmo_calls=len(all_stats),
        convergence_checks=checks,
        kernel_stats=tuple(all_stats),
        diagnostics=diagnostics,
    )
