"""Batched tensor operations over SIMD² semirings.

The paper's title is about *tensor* computation beyond GEMM: real
workloads rarely ship one matrix at a time.  :func:`batched_mmo` runs
``D[i] = C[i] ⊕ (A[i] ⊗ B[i])`` over stacked operands with NumPy-style
batch broadcasting (a single matrix broadcasts across the batch), mapping
each batch element onto the tiled kernel — which is exactly how a batched
wmma kernel schedules tile grids back to back on the same units.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.compile.lower import resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.hw.device import Simd2Device
from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import KernelStats, _validate_ring_inputs

__all__ = ["BatchStats", "batched_mmo"]


@dataclasses.dataclass(frozen=True)
class BatchStats:
    """Aggregated statistics of a batched mmo."""

    batch: int
    per_item: tuple[KernelStats, ...]

    @property
    def mmo_instructions(self) -> int:
        return sum(stats.mmo_instructions for stats in self.per_item)

    @property
    def warp_programs(self) -> int:
        return sum(stats.warp_programs for stats in self.per_item)

    @property
    def unit_ops(self) -> int:
        return sum(stats.unit_ops for stats in self.per_item)


def _as_batched(name: str, array: np.ndarray, batch: int | None) -> tuple[np.ndarray, int | None]:
    array = np.asarray(array)
    if array.ndim == 2:
        return array[None, ...], batch
    if array.ndim != 3:
        raise RuntimeError_(
            f"{name} must be a matrix or a stack of matrices, got shape {array.shape}"
        )
    if batch is None:
        return array, array.shape[0]
    if array.shape[0] not in (1, batch):
        raise RuntimeError_(
            f"{name} batch {array.shape[0]} does not broadcast to {batch}"
        )
    return array, max(batch, array.shape[0])


def batched_mmo(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    backend: str | None = None,
    device: Simd2Device | None = None,
    context: ExecutionContext | None = None,
    validate_inputs: bool = True,
) -> tuple[np.ndarray, BatchStats]:
    """``D[i] = C[i] ⊕ (A[i] ⊗ B[i])`` with batch broadcasting.

    ``a``/``b``/``c`` may be 3-D stacks ``(batch, rows, cols)`` or single
    2-D matrices (broadcast across the batch).  Ring-input poison
    validation runs once over the whole stack up front (disabled on the
    per-item launches); ``validate_inputs=False`` opts out, as on
    :func:`~repro.runtime.kernels.mmo_tiled`.  Returns the stacked result
    and per-item kernel statistics.
    """
    if isinstance(ring, MmoOpcode):
        ring = ring.semiring
    ring = get_semiring(ring)
    # Resolve once so an unknown backend fails before any batch item runs.
    ctx = resolve_context(context, backend=backend, device=device)

    batch: int | None = None
    for name, operand in (("A", a), ("B", b)) + ((("C", c),) if c is not None else ()):
        arr = np.asarray(operand)
        if arr.ndim == 3:
            if batch is None:
                batch = arr.shape[0]
            elif arr.shape[0] not in (1, batch):
                if batch == 1:
                    batch = arr.shape[0]
                else:
                    raise RuntimeError_(
                        f"{name} batch {arr.shape[0]} conflicts with batch {batch}"
                    )
            else:
                batch = max(batch, arr.shape[0])
    if batch is None:
        batch = 1

    a3, _ = _as_batched("A", a, batch)
    b3, _ = _as_batched("B", b, batch)
    c3 = None
    if c is not None:
        c3, _ = _as_batched("C", c, batch)
    # One up-front poison check over the whole stack: NaN (and the
    # oppositely-signed infinity on min-plus/max-plus) fails here naming
    # the operand, not deep inside batch item 17.  Per-item launches skip
    # the check — one scan, not one per batch element.
    if validate_inputs:
        _validate_ring_inputs(ring, a3, b3, c3)

    # Every batch item has the same (m, n, k) — stacks are uniform — so one
    # compiled artifact serves the whole batch (the graph builder's
    # ArtifactPool compiles it once and replays it per node).  The items
    # are independent launch nodes, so a thread-pool scheduler on the
    # context runs them concurrently with bit-identical results.
    # Lazy: repro.sched orchestrates this module's loops.
    from repro.sched.builders import batched_graph
    from repro.sched.executor import resolve_scheduler

    graph, launch_refs = batched_graph(ctx, resolve_opcode(ring), a3, b3, c3, batch)
    result = resolve_scheduler(ctx).run(graph, context=ctx)
    outputs = [np.asarray(result[ref]) for ref in launch_refs]
    stats_list = [result.stats_of(ref) for ref in launch_refs]
    return np.stack(outputs), BatchStats(batch=batch, per_item=tuple(stats_list))
