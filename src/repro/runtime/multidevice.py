"""Multi-device work partitioning for whole-matrix mmos.

The paper notes that MXU programming models "perform work partitioning and
tiling to execute a larger GEMM with multiple MXUs in a system or across
systems".  This module implements the across-devices level for SIMD²:
:func:`mmo_tiled_multi_device` splits the output rows of one mmo across a
list of emulated devices (each device gets a contiguous row band, B is
broadcast), runs each band on its device, and reassembles the result —
with per-device statistics so tests can assert the partition is balanced
and that the union of executed work equals the single-device run exactly.

Resilience (all opt-in, defaults preserve the plain fail-fast behaviour):

- ``checked=True`` verifies every band against its semiring ABFT
  checksums (:mod:`repro.resilience.checksum`) and retries detected
  corruption per ``retry`` (a :class:`~repro.resilience.policy
  .RetryPolicy`);
- ``on_device_failure="repartition"`` survives hard device failures
  (injected via the context's :class:`~repro.resilience.faults.FaultPlan`
  or surfaced as emulator :class:`~repro.hw.errors.HardwareError`\\ s): the
  failed device is blacklisted and the *entire row space* is repartitioned
  across the survivors, so the reassembled result is bit-identical to a
  fault-free run;
- ``blacklist`` is a caller-owned mutable set of failed device indices —
  pass the same set across calls (e.g. every iteration of a closure) and
  a dead device stays dead instead of being rediscovered each launch.

Every failure, retry, and repartition lands as a
:class:`~repro.runtime.trace.ResilienceEvent` on the context's trace.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.hooks.pipeline import emit_event
from repro.hw.device import Simd2Device
from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import (
    KernelStats,
    _validate_operands,
    _validate_ring_inputs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.policy import RetryPolicy

__all__ = ["DeviceShare", "mmo_tiled_multi_device"]


@dataclasses.dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the partitioned mmo."""

    device_index: int
    row_start: int
    row_stop: int
    stats: KernelStats

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


def _run_partition(
    roster: list[tuple[int, Simd2Device]],
    semiring: Semiring,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    ctx: ExecutionContext,
    *,
    checked: bool,
    retry: "RetryPolicy | None",
    wrap_hw_errors: bool,
    rtol: float,
    atol: float,
) -> tuple[np.ndarray, list[DeviceShare]]:
    """Run one banding of the rows over ``roster``; raise DeviceFailure on loss.

    The banding is lowered onto a :class:`~repro.sched.graph.LaunchGraph`
    — one launch node per device band carrying the device and the
    resilience policy (ABFT checking, retries, hardware-error wrapping),
    plus a gather node with pinned row windows — and run by the
    context's scheduler.  Band nodes are independent, so a thread-pool
    scheduler runs devices concurrently with bit-identical results.
    A device the fault plan hard-fails raises at *build* time, in band
    order, so the ordinals of bands built before it are preserved across
    the repartition rebuild.
    """
    m, k = a.shape
    n = b.shape[1]
    if m == 0:
        out = (
            semiring.full((m, n)) if c is None
            else np.asarray(c, semiring.output_dtype)
        )
        return out, []

    # Lazy: repro.sched orchestrates this module's loops.
    from repro.sched.builders import multidevice_graph
    from repro.sched.executor import resolve_scheduler

    graph, out_ref, bands = multidevice_graph(
        roster, semiring, a, b, c, ctx,
        checked=checked, retry=retry, wrap_hw_errors=wrap_hw_errors,
        rtol=rtol, atol=atol,
    )
    result = resolve_scheduler(ctx).run(graph, context=ctx)
    shares = [
        DeviceShare(
            device_index=index,
            row_start=row_start,
            row_stop=row_stop,
            stats=result.stats_of(ref),
        )
        for index, row_start, row_stop, ref in bands
    ]
    return np.asarray(result[out_ref]), shares


def mmo_tiled_multi_device(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    devices: list[Simd2Device],
    backend: str | None = None,
    context: ExecutionContext | None = None,
    checked: bool = False,
    retry: "RetryPolicy | None" = None,
    on_device_failure: str = "abort",
    blacklist: set[int] | None = None,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    validate_inputs: bool = True,
) -> tuple[np.ndarray, list[DeviceShare]]:
    """``D = C ⊕ (A ⊗ B)`` partitioned row-wise across devices.

    Rows are split into floor-balanced tile-aligned bands (multiples of
    16, via :func:`~repro.backends.tiling.partition_bands`) so no tile
    straddles a device boundary; some devices may receive nothing when
    there are fewer row tiles than devices.

    This is a device-centric API, so the default backend is ``"emulate"``
    unless an explicit ``backend`` or ``context`` overrides it; each band
    runs under the resolved context with its own device swapped in.

    Parameters (resilience, all opt-in)
    -----------------------------------
    checked:
        Verify every band against its ⊕-fold ABFT checksums; a detected
        corruption is retried per ``retry`` and raises
        :class:`~repro.resilience.checksum.CorruptionDetected` when the
        retries are spent.
    retry:
        :class:`~repro.resilience.policy.RetryPolicy` for transient band
        failures (detected corruption, injected drops).  Defaults to the
        policy's defaults when ``checked`` is set.
    on_device_failure:
        ``"abort"`` (default) propagates the failure; ``"repartition"``
        blacklists the failed device and redistributes *all* rows across
        the surviving devices, raising only when none survive.
    blacklist:
        Caller-owned set of failed device indices, updated in place —
        share it across calls so dead devices stay blacklisted.
    validate_inputs:
        Reject value-poisoned operands (NaN, oppositely-signed inf) once
        over the full matrices up front, exactly as
        :func:`~repro.runtime.kernels.mmo_tiled` does; the per-band
        launches skip re-validation.  ``False`` opts out for
        deliberately poisoned loops.
    """
    if on_device_failure not in ("abort", "repartition"):
        raise RuntimeError_(
            f"on_device_failure must be 'abort' or 'repartition', "
            f"got {on_device_failure!r}"
        )
    if not devices:
        raise RuntimeError_("need at least one device")
    if backend is None and context is None:
        backend = "emulate"
    ctx = resolve_context(context, backend=backend)
    if isinstance(ring, MmoOpcode):
        semiring = ring.semiring
    else:
        semiring = get_semiring(ring)
    # Shared shape validation: a bad accumulator raises the same
    # named-operand OperandValidationError (also a ValueError) here as on
    # every other entry point, instead of a bare RuntimeError_.
    a, b, c, m, n, _ = _validate_operands(a, b, c)
    if validate_inputs:
        # One poison scan over the full operands; bands skip re-checking.
        _validate_ring_inputs(semiring, a, b, c)

    blacklist = blacklist if blacklist is not None else set()
    repartition = on_device_failure == "repartition"
    while True:
        roster = [
            (index, device)
            for index, device in enumerate(devices)
            if index not in blacklist
        ]
        if not roster:
            raise RuntimeError_(
                f"no surviving devices: all {len(devices)} blacklisted "
                f"({sorted(blacklist)})"
            )
        try:
            return _run_partition(
                roster, semiring, a, b, c, ctx,
                checked=checked, retry=retry,
                wrap_hw_errors=repartition,
                rtol=rtol, atol=atol,
            )
        except Exception as exc:
            from repro.resilience.faults import DeviceFailure

            if not (repartition and isinstance(exc, DeviceFailure)):
                raise
            blacklist.add(exc.device_index)
            emit_event(
                ctx, kind="device_failure", api="mmo_tiled_multi_device",
                device_index=exc.device_index, detail=str(exc),
            )
            survivors = len(devices) - len(blacklist)
            emit_event(
                ctx, kind="repartition", api="mmo_tiled_multi_device",
                detail=f"redistributing {ceil_div(m, TILE)} row tiles "
                       f"across {survivors} surviving device(s) "
                       f"(blacklist {sorted(blacklist)})",
            )
