"""Multi-device work partitioning for whole-matrix mmos.

The paper notes that MXU programming models "perform work partitioning and
tiling to execute a larger GEMM with multiple MXUs in a system or across
systems".  This module implements the across-devices level for SIMD²:
:func:`mmo_tiled_multi_device` splits the output rows of one mmo across a
list of emulated devices (each device gets a contiguous row band, B is
broadcast), runs each band on its device, and reassembles the result —
with per-device statistics so tests can assert the partition is balanced
and that the union of executed work equals the single-device run exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.compile.artifact import grid_for
from repro.compile.lower import compile_mmo, resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.hw.device import Simd2Device
from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import KernelStats, execute_compiled, mmo_tiled

__all__ = ["DeviceShare", "mmo_tiled_multi_device"]


@dataclasses.dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the partitioned mmo."""

    device_index: int
    row_start: int
    row_stop: int
    stats: KernelStats

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


def mmo_tiled_multi_device(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    devices: list[Simd2Device],
    backend: str | None = None,
    context: ExecutionContext | None = None,
) -> tuple[np.ndarray, list[DeviceShare]]:
    """``D = C ⊕ (A ⊗ B)`` partitioned row-wise across devices.

    Rows are split into tile-aligned bands (multiples of 16) so no tile
    straddles a device boundary; devices at the tail may receive nothing
    when there are fewer row tiles than devices.

    This is a device-centric API, so the default backend is ``"emulate"``
    unless an explicit ``backend`` or ``context`` overrides it; each band
    runs under the resolved context with its own device swapped in.
    """
    if not devices:
        raise RuntimeError_("need at least one device")
    if backend is None and context is None:
        backend = "emulate"
    ctx = resolve_context(context, backend=backend)
    if isinstance(ring, MmoOpcode):
        semiring = ring.semiring
    else:
        semiring = get_semiring(ring)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise RuntimeError_(f"bad mmo operand shapes A{a.shape} x B{b.shape}")
    m, _ = a.shape
    n = b.shape[1]
    if c is not None:
        c = np.asarray(c)
        if c.shape != (m, n):
            raise RuntimeError_(f"accumulator shape {c.shape} != {(m, n)}")

    row_tiles = ceil_div(m, TILE) if m else 0
    tiles_per_device = ceil_div(row_tiles, len(devices)) if row_tiles else 0
    k = a.shape[1]

    # All bands except possibly the last share one tile-aligned height, so a
    # single compiled artifact covers them; compile it once for the common
    # band shape and replay it per device.  A shorter tail band (and any
    # backend without the compile/execute split) falls back to mmo_tiled.
    from repro.backends.base import get_backend  # lazy: backends import us

    impl = get_backend(ctx.backend)
    compiled = None
    first_hit: bool | None = None
    band_rows = min(m, tiles_per_device * TILE)
    if band_rows > 0 and n > 0 and callable(getattr(impl, "compile", None)):
        opcode = resolve_opcode(semiring)
        compiled, first_hit = compile_mmo(
            impl, opcode, band_rows, n, k,
            has_accumulator=c is not None, context=ctx,
        )

    out = np.empty((m, n), dtype=semiring.output_dtype)
    shares: list[DeviceShare] = []
    launched = 0
    for index, device in enumerate(devices):
        start_tile = index * tiles_per_device
        stop_tile = min(row_tiles, (index + 1) * tiles_per_device)
        row_start = min(m, start_tile * TILE)
        row_stop = min(m, stop_tile * TILE)
        if row_stop <= row_start:
            continue
        band_c = None if c is None else c[row_start:row_stop]
        band_ctx = ctx.replace(device=device)
        if (
            compiled is not None
            and grid_for(row_stop - row_start, n, k) == compiled.grid
        ):
            band, stats = execute_compiled(
                compiled, a[row_start:row_stop], b, band_c,
                context=band_ctx, api="mmo_tiled_multi_device",
                cache_hit=first_hit if launched == 0 else True,
            )
        else:
            band, stats = mmo_tiled(
                semiring,
                a[row_start:row_stop],
                b,
                band_c,
                context=band_ctx,
                api="mmo_tiled_multi_device",
            )
        launched += 1
        out[row_start:row_stop] = band
        shares.append(
            DeviceShare(
                device_index=index,
                row_start=row_start,
                row_stop=row_stop,
                stats=stats,
            )
        )
    if m == 0:
        out = semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
    return out, shares
