"""Multi-device work partitioning for whole-matrix mmos.

The paper notes that MXU programming models "perform work partitioning and
tiling to execute a larger GEMM with multiple MXUs in a system or across
systems".  This module implements the across-devices level for SIMD²:
:func:`mmo_tiled_multi_device` splits the output rows of one mmo across a
list of emulated devices (each device gets a contiguous row band, B is
broadcast), runs each band on its device, and reassembles the result —
with per-device statistics so tests can assert the partition is balanced
and that the union of executed work equals the single-device run exactly.

Resilience (all opt-in, defaults preserve the plain fail-fast behaviour):

- ``checked=True`` verifies every band against its semiring ABFT
  checksums (:mod:`repro.resilience.checksum`) and retries detected
  corruption per ``retry`` (a :class:`~repro.resilience.policy
  .RetryPolicy`);
- ``on_device_failure="repartition"`` survives hard device failures
  (injected via the context's :class:`~repro.resilience.faults.FaultPlan`
  or surfaced as emulator :class:`~repro.hw.errors.HardwareError`\\ s): the
  failed device is blacklisted and the *entire row space* is repartitioned
  across the survivors, so the reassembled result is bit-identical to a
  fault-free run;
- ``blacklist`` is a caller-owned mutable set of failed device indices —
  pass the same set across calls (e.g. every iteration of a closure) and
  a dead device stays dead instead of being rediscovered each launch.

Every failure, retry, and repartition lands as a
:class:`~repro.runtime.trace.ResilienceEvent` on the context's trace.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.compile.artifact import grid_for
from repro.compile.lower import resolve_opcode
from repro.core.registry import get_semiring
from repro.core.semiring import Semiring
from repro.core.tiles import TILE, ceil_div
from repro.hooks.pipeline import emit_event
from repro.hw.device import Simd2Device
from repro.hw.errors import HardwareError
from repro.isa.opcodes import MmoOpcode
from repro.runtime.api import RuntimeError_
from repro.runtime.context import ExecutionContext, resolve_context
from repro.runtime.kernels import (
    KernelStats,
    _validate_operands,
    _validate_ring_inputs,
    compile_in_context,
    execute_compiled,
    mmo_tiled,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.policy import RetryPolicy

__all__ = ["DeviceShare", "mmo_tiled_multi_device"]


@dataclasses.dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the partitioned mmo."""

    device_index: int
    row_start: int
    row_stop: int
    stats: KernelStats

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


def _run_partition(
    roster: list[tuple[int, Simd2Device]],
    semiring: Semiring,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    ctx: ExecutionContext,
    *,
    checked: bool,
    retry: "RetryPolicy | None",
    wrap_hw_errors: bool,
    rtol: float,
    atol: float,
) -> tuple[np.ndarray, list[DeviceShare]]:
    """Run one banding of the rows over ``roster``; raise DeviceFailure on loss."""
    m, k = a.shape
    n = b.shape[1]
    row_tiles = ceil_div(m, TILE) if m else 0
    tiles_per_device = ceil_div(row_tiles, len(roster)) if row_tiles else 0

    # All bands except possibly the last share one tile-aligned height, so a
    # single compiled artifact covers them; compile it once for the common
    # band shape and replay it per device.  A shorter tail band (and any
    # backend without the compile/execute split) falls back to mmo_tiled.
    from repro.backends.base import get_backend  # lazy: backends import us

    impl = get_backend(ctx.backend)
    compiled = None
    first_hit: bool | None = None
    band_rows = min(m, tiles_per_device * TILE)
    if band_rows > 0 and n > 0 and callable(getattr(impl, "compile", None)):
        opcode = resolve_opcode(semiring)
        compiled, first_hit = compile_in_context(
            ctx, impl, opcode, band_rows, n, k,
            has_accumulator=c is not None, api="mmo_tiled_multi_device",
        )

    if checked or retry is not None:
        # Lazy: repro.resilience imports this package.
        from repro.resilience.checksum import CheckedLaunch, mmo_checksums
        from repro.resilience.policy import RETRYABLE, RetryPolicy

        policy = retry if retry is not None else RetryPolicy()
        checker = CheckedLaunch(rtol=rtol, atol=atol) if checked else None
    else:
        RETRYABLE = ()  # noqa: N806 - mirrors the imported constant
        policy = None
        checker = None

    out = np.empty((m, n), dtype=semiring.output_dtype)
    shares: list[DeviceShare] = []
    launched = 0
    for position, (index, device) in enumerate(roster):
        start_tile = position * tiles_per_device
        stop_tile = min(row_tiles, (position + 1) * tiles_per_device)
        row_start = min(m, start_tile * TILE)
        row_stop = min(m, stop_tile * TILE)
        if row_stop <= row_start:
            continue
        plan = ctx.fault_plan
        if plan is not None and plan.device_should_fail(index):
            from repro.resilience.faults import DeviceFailure

            plan.record_device_failure(ctx, "mmo_tiled_multi_device", index)
            raise DeviceFailure(index, "injected hard failure")
        a_band = a[row_start:row_stop]
        band_c = None if c is None else c[row_start:row_stop]
        band_ctx = ctx.replace(device=device)
        sums = (
            mmo_checksums(semiring, a_band, b, band_c, rtol=rtol, atol=atol)
            if checker is not None
            else None
        )

        attempts = policy.max_attempts if policy is not None else 1
        band = stats = None
        for attempt in range(attempts):
            try:
                if (
                    compiled is not None
                    and grid_for(row_stop - row_start, n, k) == compiled.grid
                ):
                    band, stats = execute_compiled(
                        compiled, a_band, b, band_c,
                        context=band_ctx, api="mmo_tiled_multi_device",
                        cache_hit=first_hit if launched == 0 else True,
                        validate_inputs=False,
                    )
                else:
                    band, stats = mmo_tiled(
                        semiring, a_band, b, band_c,
                        context=band_ctx, api="mmo_tiled_multi_device",
                        validate_inputs=False,
                    )
                if checker is not None and sums is not None:
                    checker.verify(
                        sums, band, context=band_ctx,
                        api="mmo_tiled_multi_device",
                    )
                break
            except HardwareError as exc:
                if not wrap_hw_errors:
                    raise
                from repro.resilience.faults import DeviceFailure

                raise DeviceFailure(index, str(exc)) from exc
            except RETRYABLE as exc:
                if attempt + 1 >= attempts:
                    raise
                emit_event(
                    ctx, kind="retry", api="mmo_tiled_multi_device",
                    attempt=attempt + 1, device_index=index,
                    detail=f"band [{row_start}:{row_stop}) attempt "
                           f"{attempt + 1} failed: {exc}",
                )
        assert band is not None and stats is not None
        launched += 1
        out[row_start:row_stop] = band
        shares.append(
            DeviceShare(
                device_index=index,
                row_start=row_start,
                row_stop=row_stop,
                stats=stats,
            )
        )
    if m == 0:
        out = semiring.full((m, n)) if c is None else np.asarray(c, semiring.output_dtype)
    return out, shares


def mmo_tiled_multi_device(
    ring: Semiring | str | MmoOpcode,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    devices: list[Simd2Device],
    backend: str | None = None,
    context: ExecutionContext | None = None,
    checked: bool = False,
    retry: "RetryPolicy | None" = None,
    on_device_failure: str = "abort",
    blacklist: set[int] | None = None,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    validate_inputs: bool = True,
) -> tuple[np.ndarray, list[DeviceShare]]:
    """``D = C ⊕ (A ⊗ B)`` partitioned row-wise across devices.

    Rows are split into tile-aligned bands (multiples of 16) so no tile
    straddles a device boundary; devices at the tail may receive nothing
    when there are fewer row tiles than devices.

    This is a device-centric API, so the default backend is ``"emulate"``
    unless an explicit ``backend`` or ``context`` overrides it; each band
    runs under the resolved context with its own device swapped in.

    Parameters (resilience, all opt-in)
    -----------------------------------
    checked:
        Verify every band against its ⊕-fold ABFT checksums; a detected
        corruption is retried per ``retry`` and raises
        :class:`~repro.resilience.checksum.CorruptionDetected` when the
        retries are spent.
    retry:
        :class:`~repro.resilience.policy.RetryPolicy` for transient band
        failures (detected corruption, injected drops).  Defaults to the
        policy's defaults when ``checked`` is set.
    on_device_failure:
        ``"abort"`` (default) propagates the failure; ``"repartition"``
        blacklists the failed device and redistributes *all* rows across
        the surviving devices, raising only when none survive.
    blacklist:
        Caller-owned set of failed device indices, updated in place —
        share it across calls so dead devices stay blacklisted.
    validate_inputs:
        Reject value-poisoned operands (NaN, oppositely-signed inf) once
        over the full matrices up front, exactly as
        :func:`~repro.runtime.kernels.mmo_tiled` does; the per-band
        launches skip re-validation.  ``False`` opts out for
        deliberately poisoned loops.
    """
    if on_device_failure not in ("abort", "repartition"):
        raise RuntimeError_(
            f"on_device_failure must be 'abort' or 'repartition', "
            f"got {on_device_failure!r}"
        )
    if not devices:
        raise RuntimeError_("need at least one device")
    if backend is None and context is None:
        backend = "emulate"
    ctx = resolve_context(context, backend=backend)
    if isinstance(ring, MmoOpcode):
        semiring = ring.semiring
    else:
        semiring = get_semiring(ring)
    # Shared shape validation: a bad accumulator raises the same
    # named-operand OperandValidationError (also a ValueError) here as on
    # every other entry point, instead of a bare RuntimeError_.
    a, b, c, m, n, _ = _validate_operands(a, b, c)
    if validate_inputs:
        # One poison scan over the full operands; bands skip re-checking.
        _validate_ring_inputs(semiring, a, b, c)

    blacklist = blacklist if blacklist is not None else set()
    repartition = on_device_failure == "repartition"
    while True:
        roster = [
            (index, device)
            for index, device in enumerate(devices)
            if index not in blacklist
        ]
        if not roster:
            raise RuntimeError_(
                f"no surviving devices: all {len(devices)} blacklisted "
                f"({sorted(blacklist)})"
            )
        try:
            return _run_partition(
                roster, semiring, a, b, c, ctx,
                checked=checked, retry=retry,
                wrap_hw_errors=repartition,
                rtol=rtol, atol=atol,
            )
        except Exception as exc:
            from repro.resilience.faults import DeviceFailure

            if not (repartition and isinstance(exc, DeviceFailure)):
                raise
            blacklist.add(exc.device_index)
            emit_event(
                ctx, kind="device_failure", api="mmo_tiled_multi_device",
                device_index=exc.device_index, detail=str(exc),
            )
            survivors = len(devices) - len(blacklist)
            emit_event(
                ctx, kind="repartition", api="mmo_tiled_multi_device",
                detail=f"redistributing {ceil_div(m, TILE)} row tiles "
                       f"across {survivors} surviving device(s) "
                       f"(blacklist {sorted(blacklist)})",
            )
