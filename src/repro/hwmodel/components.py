"""Component-level area primitives of the SIMD² datapath (paper §6.1).

The paper synthesises RTL with a 45 nm library; without a synthesis flow
this module models unit area as a composition of per-lane arithmetic
primitives whose relative areas are *calibrated once* against the paper's
Table 5 and then reused to predict every configuration — the combined
SIMD² unit, the per-instruction increments, the standalone accelerators,
and the precision sweep.  The point the model preserves is structural:
which circuits each opcode needs and which it can share with the MMA
datapath.

All areas are normalised to the 16-bit baseline MMA unit = 1.0 (the paper
reports it as 11.52 area units).

Two primitive classes scale differently with precision:

- *multiplier-class* (mantissa-multiplier-dominated): the fused multiplier,
  the standalone normalising multiplier, the squared-difference ⊗ stage and
  the product normalise/round stage,
- *adder-class* (linear in width): adders, comparators, boolean lanes,
  operand fabric and control.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = [
    "LANES",
    "PrimitiveClass",
    "Primitive",
    "PRIMITIVES",
    "MUL_SCALE",
    "ADD_SCALE",
    "SUPPORTED_BITS",
    "scaled_area",
    "BASELINE_MMA_AREA_UNITS",
    "BASELINE_MMA_POWER_W",
    "SIMD2_EXTRA_POWER_W",
]

#: Lanes in a 4×4×4 unit: 64 ⊗ lanes feeding 16 four-input reduction trees.
LANES = 64

#: The paper's reported absolute size of the 16-bit baseline MMA unit.
BASELINE_MMA_AREA_UNITS = 11.52
#: Synthesised power of the baseline MMA unit (paper §6.1).
BASELINE_MMA_POWER_W = 3.74
#: Additional active power of the full SIMD² unit over the baseline.
SIMD2_EXTRA_POWER_W = 0.79

SUPPORTED_BITS = (8, 16, 32, 64)

#: Relative area of multiplier-class primitives per precision (16-bit = 1).
#: Calibrated so the modelled MMA unit hits Table 5(c): 0.25 / 1 / 4.04 / 11.17.
MUL_SCALE: dict[int, float] = {8: 0.18, 16: 1.0, 32: 4.6, 64: 13.0}

#: Relative area of adder-class primitives per precision.
ADD_SCALE: dict[int, float] = {8: 0.5, 16: 1.0, 32: 2.0, 64: 4.2}


class PrimitiveClass(enum.Enum):
    MULTIPLIER = "multiplier"
    ADDER = "adder"


@dataclasses.dataclass(frozen=True)
class Primitive:
    """One per-lane (or per-unit, for fabric/control) circuit primitive."""

    name: str
    area_16bit: float
    scale_class: PrimitiveClass
    per_lane: bool = True

    def area(self, bits: int) -> float:
        """Area at the given precision (one lane, or the whole block)."""
        if bits not in SUPPORTED_BITS:
            raise ValueError(f"unsupported precision {bits}; expected {SUPPORTED_BITS}")
        table = MUL_SCALE if self.scale_class is PrimitiveClass.MULTIPLIER else ADD_SCALE
        return self.area_16bit * table[bits]

    def unit_area(self, bits: int) -> float:
        """Total area contributed to a 64-lane unit."""
        return self.area(bits) * (LANES if self.per_lane else 1)


def _mul(name: str, area: float, *, per_lane: bool = True) -> Primitive:
    return Primitive(name, area, PrimitiveClass.MULTIPLIER, per_lane)


def _add(name: str, area: float, *, per_lane: bool = True) -> Primitive:
    return Primitive(name, area, PrimitiveClass.ADDER, per_lane)


#: The primitive library.  Per-lane areas are in units of "16-bit MMA = 1".
#:
#: Combined-unit primitives (wide datapath, muxed into the existing ALUs):
#:   mul_fused     fused fp16 multiplier of the MMA datapath
#:   acc_add       fp32 accumulate adder (reduction tree + C combine)
#:   otimes_add    fp16 adder mode added to the ⊗ ALU (min-plus/max-plus)
#:   otimes_subsq  subtract-and-square stage for add-norm (shares the
#:                 multiplier array, adds the difference path)
#:   cmp           a min- or max-comparator mode (either ALU)
#:   boolean       an and/or lane
#:   pnorm         normalise/round stage exposing a standalone product to a
#:                 non-add ⊕ (needed by min-mul/max-mul; an FMA otherwise
#:                 keeps the product unnormalised)
#:   fabric        operand broadcast / pipeline registers of the unit
#:   crossbar      9-opcode configuration crossbar + decode of the full unit
#:
#: Standalone-accelerator primitives (minimal fixed-function datapaths):
#:   sa_mul_norm   full normalising multiplier
#:   sa_add        fp16 adder + normalise
#:   sa_cmp        comparator
#:   sa_bool       boolean lane
#:   sa_norm_lane  subtract/square/accumulate lane of an add-norm PE
#:   sa_ctrl       fixed-function control of a standalone PE
PRIMITIVES: dict[str, Primitive] = {
    p.name: p
    for p in (
        _mul("mul_fused", 0.0125),
        _add("acc_add", 0.002),
        _add("otimes_add", 0.0032),
        _mul("otimes_subsq", 0.0028),
        _add("cmp", 0.000078),
        _add("boolean", 0.0003125),
        _mul("pnorm", 0.0018),
        _add("fabric", 0.072, per_lane=False),
        _add("crossbar", 0.131, per_lane=False),
        _mul("sa_mul_norm", 0.0155),
        _add("sa_add", 0.00344),
        _add("sa_cmp", 0.0003125),
        _add("sa_bool", 0.00047),
        _mul("sa_norm_lane", 0.00266),
        _add("sa_ctrl", 0.02, per_lane=False),
    )
}


def scaled_area(primitive_name: str, bits: int) -> float:
    """Unit-level area of one primitive at a precision."""
    return PRIMITIVES[primitive_name].unit_area(bits)
