"""Unit-area composition: reproduces the paper's Table 5.

Three configurations are modelled:

- :func:`mma_unit_area` — the baseline MMA-only unit,
- :func:`combined_unit_area` — the MMA unit extended with a subset of
  SIMD² instructions (the paper's Table 5(a): sharing circuits with the
  MMA datapath),
- :func:`standalone_unit_area` — a fixed-function accelerator per
  instruction (Table 5(b): no sharing, ~3× the silicon in total).

``PAPER_TABLE5A/B/C`` embed the paper's synthesis numbers for comparison
by the bench harness and tests.
"""

from __future__ import annotations

from repro.hwmodel.components import (
    BASELINE_MMA_POWER_W,
    SIMD2_EXTRA_POWER_W,
    scaled_area,
)
from repro.isa.opcodes import MmoOpcode

__all__ = [
    "ALL_SIMD2_EXTENSIONS",
    "combined_unit_area",
    "mma_unit_area",
    "simd2_unit_area",
    "standalone_unit_area",
    "standalone_total_area",
    "unit_power_w",
    "PAPER_TABLE5A",
    "PAPER_TABLE5B",
    "PAPER_TABLE5C",
]

#: The eight extensions beyond plain MMA.
ALL_SIMD2_EXTENSIONS: tuple[MmoOpcode, ...] = tuple(
    op for op in MmoOpcode if op is not MmoOpcode.MMA
)

#: Primitives each opcode adds to the *combined* unit, beyond the MMA
#: datapath.  Shared primitives appear under several opcodes and are
#: counted once when composing a multi-opcode unit.
_COMBINED_ADDITIONS: dict[MmoOpcode, tuple[str, ...]] = {
    MmoOpcode.MMA: (),
    MmoOpcode.MINPLUS: ("otimes_add", "oplus_cmp_min"),
    MmoOpcode.MAXPLUS: ("otimes_add", "oplus_cmp_max"),
    MmoOpcode.MINMUL: ("pnorm", "oplus_cmp_min"),
    MmoOpcode.MAXMUL: ("pnorm", "oplus_cmp_max"),
    MmoOpcode.MINMAX: ("otimes_cmp_max", "oplus_cmp_min"),
    MmoOpcode.MAXMIN: ("otimes_cmp_min", "oplus_cmp_max"),
    MmoOpcode.ORAND: ("otimes_bool", "oplus_bool"),
    MmoOpcode.ADDNORM: ("otimes_subsq",),
}

#: Distinct named additions → underlying primitive.
_ADDITION_PRIMITIVE: dict[str, str] = {
    "otimes_add": "otimes_add",
    "otimes_subsq": "otimes_subsq",
    "otimes_cmp_min": "cmp",
    "otimes_cmp_max": "cmp",
    "oplus_cmp_min": "cmp",
    "oplus_cmp_max": "cmp",
    "otimes_bool": "boolean",
    "oplus_bool": "boolean",
    "pnorm": "pnorm",
}

#: Primitives of each standalone fixed-function accelerator.
_STANDALONE_COMPOSITION: dict[MmoOpcode, tuple[tuple[str, int], ...]] = {
    MmoOpcode.MMA: (("mul_fused", 1), ("acc_add", 1), ("fabric", 1)),
    MmoOpcode.MINPLUS: (("sa_add", 1), ("sa_cmp", 1), ("sa_ctrl", 1)),
    MmoOpcode.MAXPLUS: (("sa_add", 1), ("sa_cmp", 1), ("sa_ctrl", 1)),
    MmoOpcode.MINMUL: (("sa_mul_norm", 1), ("sa_cmp", 1), ("sa_ctrl", 1)),
    MmoOpcode.MAXMUL: (("sa_mul_norm", 1), ("sa_cmp", 1), ("sa_ctrl", 1)),
    MmoOpcode.MINMAX: (("sa_cmp", 2), ("sa_ctrl", 1)),
    MmoOpcode.MAXMIN: (("sa_cmp", 2), ("sa_ctrl", 1)),
    MmoOpcode.ORAND: (("sa_bool", 2), ("sa_ctrl", 1)),
    MmoOpcode.ADDNORM: (("sa_norm_lane", 1), ("sa_ctrl", 1)),
}

#: Paper Table 5(a): combined-unit areas (baseline MMA = 1).
PAPER_TABLE5A: dict[str, float] = {
    "mma+all": 1.69,
    "mma+minplus": 1.21,
    "mma+maxplus": 1.21,
    "mma+minmul": 1.12,
    "mma+maxmul": 1.12,
    "mma+minmax": 1.01,
    "mma+maxmin": 1.01,
    "mma+orand": 1.04,
    "mma+addnorm": 1.18,
}

#: Paper Table 5(b): standalone accelerator areas.
PAPER_TABLE5B: dict[str, float] = {
    "minplus": 0.26,
    "maxplus": 0.26,
    "minmul": 1.03,
    "maxmul": 1.03,
    "minmax": 0.06,
    "maxmin": 0.06,
    "orand": 0.08,
    "addnorm": 0.19,
    "total": 2.96,
}

#: Paper Table 5(c): precision scaling (16-bit MMA = 1).
PAPER_TABLE5C: dict[str, dict[int, float]] = {
    "mma": {8: 0.25, 16: 1.0, 32: 4.04, 64: 11.17},
    "simd2": {8: 0.69, 16: 1.69, 32: 6.42, 64: 17.01},
}


def mma_unit_area(bits: int = 16) -> float:
    """Area of the baseline MMA-only unit at a precision."""
    return (
        scaled_area("mul_fused", bits)
        + scaled_area("acc_add", bits)
        + scaled_area("fabric", bits)
    )


def combined_unit_area(
    extensions: tuple[MmoOpcode, ...] | list[MmoOpcode], bits: int = 16
) -> float:
    """Area of the MMA unit extended with the given SIMD² instructions.

    Shared additions (e.g. the ⊕ min comparator used by min-plus, min-mul
    and min-max) are counted once; extending with every instruction also
    pays the full 9-way configuration crossbar.
    """
    additions: set[str] = set()
    for opcode in extensions:
        if opcode not in _COMBINED_ADDITIONS:
            raise ValueError(f"unknown opcode {opcode!r}")
        additions.update(_COMBINED_ADDITIONS[opcode])
    area = mma_unit_area(bits)
    area += sum(scaled_area(_ADDITION_PRIMITIVE[name], bits) for name in additions)
    if set(extensions) >= set(ALL_SIMD2_EXTENSIONS):
        area += scaled_area("crossbar", bits)
    return area


def simd2_unit_area(bits: int = 16) -> float:
    """Area of the full SIMD² unit (all nine instructions)."""
    return combined_unit_area(ALL_SIMD2_EXTENSIONS, bits)


def standalone_unit_area(opcode: MmoOpcode, bits: int = 16) -> float:
    """Area of a fixed-function accelerator for one instruction."""
    if opcode not in _STANDALONE_COMPOSITION:
        raise ValueError(f"unknown opcode {opcode!r}")
    return sum(
        scaled_area(name, bits) * count
        for name, count in _STANDALONE_COMPOSITION[opcode]
    )


def standalone_total_area(bits: int = 16) -> float:
    """Summed area of the eight per-instruction accelerators (no MMA)."""
    return sum(standalone_unit_area(op, bits) for op in ALL_SIMD2_EXTENSIONS)


def unit_power_w(extensions: tuple[MmoOpcode, ...] | list[MmoOpcode] = ()) -> float:
    """Active power of a unit (paper: 3.74 W baseline, +0.79 W full SIMD²).

    Added logic is clock-gated when unused, so extra power scales with the
    added area's share of the full extension rather than with raw area.
    """
    base = BASELINE_MMA_POWER_W
    if not extensions:
        return base
    full_extra_area = simd2_unit_area(16) - mma_unit_area(16)
    extra_area = combined_unit_area(tuple(extensions), 16) - mma_unit_area(16)
    return base + SIMD2_EXTRA_POWER_W * (extra_area / full_extra_area)
