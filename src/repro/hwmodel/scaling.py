"""Process scaling and chip-level overhead of SIMD² (paper §6.1).

The paper scales the 45 nm synthesis result to the Samsung 8N process of
the RTX 3080 and reads SM/die areas off a public die photo: the full SIMD²
extension adds 0.378 mm² per SM — about 10 % of a 3.75 mm² SM and about
5 % of the 628.4 mm² die across all 68 SMs (with four units per SM sharing
one extension-sized budget, as the paper's accounting does).
"""

from __future__ import annotations

import dataclasses

from repro.hwmodel.components import BASELINE_MMA_AREA_UNITS
from repro.hwmodel.units import mma_unit_area, simd2_unit_area

__all__ = ["ChipSpec", "RTX3080_CHIP", "simd2_sm_overhead_mm2", "die_overhead_fractions"]


@dataclasses.dataclass(frozen=True)
class ChipSpec:
    """Die-level geometry of the host GPU."""

    name: str
    die_area_mm2: float
    sm_count: int
    sm_area_mm2: float
    #: mm² per synthesis area-unit after scaling 45 nm → the chip's node.
    #: Calibrated from the paper: 69.23 % of 11.52 units → 0.378 mm².
    mm2_per_area_unit: float

    @property
    def sm_total_fraction(self) -> float:
        return self.sm_count * self.sm_area_mm2 / self.die_area_mm2


RTX3080_CHIP = ChipSpec(
    name="RTX 3080 (GA102, Samsung 8N)",
    die_area_mm2=628.4,
    sm_count=68,
    sm_area_mm2=3.75,
    mm2_per_area_unit=0.378 / (BASELINE_MMA_AREA_UNITS * 0.6923),
)


def simd2_sm_overhead_mm2(chip: ChipSpec = RTX3080_CHIP) -> float:
    """Absolute per-SM area added by the SIMD² extension on this chip."""
    extra_units = (simd2_unit_area(16) - mma_unit_area(16)) * BASELINE_MMA_AREA_UNITS
    return extra_units * chip.mm2_per_area_unit


def die_overhead_fractions(chip: ChipSpec = RTX3080_CHIP) -> tuple[float, float]:
    """(fraction of one SM, fraction of the whole die) added by SIMD²."""
    per_sm = simd2_sm_overhead_mm2(chip)
    sm_fraction = per_sm / chip.sm_area_mm2
    die_fraction = per_sm * chip.sm_count / chip.die_area_mm2
    return sm_fraction, die_fraction
