"""Energy analysis derived from the Table 5 power data.

The paper reports unit power (3.74 W MMA, +0.79 W full SIMD²) but not
application energy; this module derives it.  Per-application energy is
board power × kernel time, with board power composed from a static base
plus the active engine:

- baseline / SIMD²-on-CUDA runs keep the 128-lane vector engines active,
- SIMD² runs power the matrix units (one per sub-core) while the vector
  engines only run the convergence checks.

Because SIMD² shortens runtime ~10× while adding ~0.8 W per unit, the
*energy* advantage tracks the speedup almost 1:1 — the analysis the
"Energy Efficiency Boost" line of work (the paper's IBM MMA citation)
makes for matrix engines.
"""

from __future__ import annotations

import dataclasses

from repro.hwmodel.components import BASELINE_MMA_POWER_W, SIMD2_EXTRA_POWER_W
from repro.timing.kernel_models import AppTimes

__all__ = ["BoardPowerModel", "EnergyComparison", "app_energy"]


@dataclasses.dataclass(frozen=True)
class BoardPowerModel:
    """Whole-board power during each execution mode (RTX 3080 class)."""

    #: Static + memory + infrastructure power, always present.
    base_w: float = 90.0
    #: All CUDA-core vector engines at load.
    cuda_engines_w: float = 130.0
    #: All matrix units at load: 68 SMs × 4 units × unit power.
    units_per_board: int = 68 * 4
    mma_unit_w: float = BASELINE_MMA_POWER_W / 4  # per-unit share at tile rate
    simd2_extra_w: float = SIMD2_EXTRA_POWER_W / 4

    @property
    def cuda_mode_w(self) -> float:
        """Board power while a CUDA-core kernel runs."""
        return self.base_w + self.cuda_engines_w

    @property
    def simd2_mode_w(self) -> float:
        """Board power while SIMD² units run (vector engines near idle)."""
        units = self.units_per_board * (self.mma_unit_w + self.simd2_extra_w)
        return self.base_w + units


@dataclasses.dataclass(frozen=True)
class EnergyComparison:
    """Energy of the three implementations of one application run."""

    app: str
    size: int
    baseline_j: float
    simd2_cuda_j: float
    simd2_units_j: float

    @property
    def energy_gain(self) -> float:
        """Baseline energy over SIMD²-with-units energy."""
        return self.baseline_j / self.simd2_units_j


def app_energy(
    times: AppTimes, power: BoardPowerModel = BoardPowerModel()
) -> EnergyComparison:
    """Energy of one application's three implementations."""
    return EnergyComparison(
        app=times.app,
        size=times.size,
        baseline_j=times.baseline_s * power.cuda_mode_w,
        simd2_cuda_j=times.simd2_cuda_s * power.cuda_mode_w,
        simd2_units_j=times.simd2_units_s * power.simd2_mode_w,
    )
