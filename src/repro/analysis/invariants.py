"""AST-level invariant lint: the repository's cross-cutting contracts.

The IR verifier (:mod:`repro.isa.verifier`) proves properties of *lowered
programs*; this module proves properties of the *source tree* that no
unit test pins down because they are conventions spanning many files:

- **trace-writes** — :class:`~repro.runtime.trace.Trace` is written only
  through the hook pipeline (:mod:`repro.hooks`); dispatch code that
  hand-appends records resurrects exactly the seam drift the pipeline
  refactor removed;
- **launch-bracketing** — every runtime function that invokes a backend
  (``.execute`` / ``.run_mmo``) must bracket the call with the pipeline's
  ``begin_launch``/``finish_launch``, so no dispatch path escapes
  validation, fault injection or tracing;
- **raw-matmul** — backends and the sparse tier may not use raw numpy
  matrix products (``@``, ``np.dot``, ``np.matmul``, ``np.einsum``):
  every product must flow through a semiring fold so non-(+,×) rings
  cannot silently fall back to GEMM semantics;
- **lock-discipline** — the attributes :class:`PlanCache`,
  :class:`Trace` and :class:`~repro.plan.autotune.AutotuneTable`
  document as lock-protected are touched only inside ``with
  self._lock:`` (``__init__``, which runs before the object is shared,
  is exempt);
- **backend-resolution** — runtime and resilience dispatch sites resolve
  backends through the context/planner/registry, never by string
  literal: no ``get_backend("<name>")`` calls and no ``.backend ==
  "<name>"`` dispatch comparisons outside :mod:`repro.plan` — hardcoded
  names at dispatch sites are exactly what adaptive dispatch replaced;
- **scheduler-loops** — outside :mod:`repro.sched`, no raw loops over
  ``execute_compiled``: loop-shaped entry points lower onto a
  :class:`~repro.sched.graph.LaunchGraph` so every replay flows through
  the scheduler (backend locks, deterministic ordering, per-node
  resilience) instead of a hand-rolled ``for`` loop;
- **clock-discipline** — outside ``repro/resilience/clock.py`` (the one
  adapter over the stdlib), no raw ``time.time()`` /
  ``time.monotonic()`` / ``time.perf_counter()`` / ``time.sleep()``
  calls and no ``from time import ...``: wall time flows through the
  injectable :class:`~repro.resilience.clock.Clock` so deadlines,
  backoff and launch timings replay deterministically under a virtual
  clock;
- **import-layering** — see :mod:`repro.analysis.layering`.

Each rule is a :class:`Rule` subclass; :func:`lint_paths` applies every
applicable rule to every ``.py`` file under the given roots and returns
:class:`Violation`\\ s.  ``python -m repro.analysis`` (or
``tools/check_invariants.py`` / ``make check-static``) runs the full set
and exits non-zero on any violation — the tree is expected to lint clean
with **zero suppressions**.

Adding a rule: subclass :class:`Rule`, implement ``applies_to`` (path
filter) and ``check`` (AST walk yielding violations), and append an
instance in :func:`default_rules`.  Keep rules syntactic and
allowlist-free where possible; a rule that needs per-file exemptions is
usually describing a convention the code should change to meet instead.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "BackendResolutionRule",
    "ClockDisciplineRule",
    "LaunchBracketRule",
    "LockDisciplineRule",
    "RawMatmulRule",
    "Rule",
    "SchedulerLoopRule",
    "TraceWriteRule",
    "Violation",
    "default_rules",
    "lint_file",
    "lint_paths",
]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant breach, pointing at the offending source line."""

    path: str  # POSIX-style path relative to the source root ("repro/...")
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class of invariant-lint rules.

    ``applies_to`` filters by repository-relative POSIX path (cheap, runs
    per file); ``check`` walks the parsed module of an applicable file
    and yields violations.  Rules are stateless — one instance serves
    every file.
    """

    #: Identifier shown in diagnostics and used by tests.
    name: str = ""
    #: One-line statement of the invariant (docs list these).
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, relpath: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=relpath,
            line=getattr(node, "lineno", 0),
            rule=self.name,
            message=message,
        )


def _call_attr(node: ast.AST) -> str | None:
    """The attribute name of a method-style call, or ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class TraceWriteRule(Rule):
    """Trace records are appended only by the hook pipeline.

    The whole point of the lifecycle-hook refactor is that dispatch code
    never hand-threads observability: a ``trace.record(...)`` call in an
    entry point is a seam regression even if it happens to work today.
    Writes are allowed in :mod:`repro.hooks` (the pipeline's sinks) and
    in ``repro/runtime/trace.py`` itself (the definitions).
    """

    name = "trace-writes"
    description = (
        "Trace.record / record_event / record_compile are called only from "
        "repro/hooks/ (the pipeline) and repro/runtime/trace.py"
    )

    _WRITERS = frozenset(
        {"record", "record_event", "record_compile", "record_plan"}
    )
    _ALLOWED_PREFIXES = ("repro/hooks/",)
    _ALLOWED_FILES = frozenset({"repro/runtime/trace.py"})

    def applies_to(self, relpath: str) -> bool:
        if relpath in self._ALLOWED_FILES:
            return False
        return not relpath.startswith(self._ALLOWED_PREFIXES)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            attr = _call_attr(node)
            if attr not in self._WRITERS:
                continue
            receiver = ast.unparse(node.func.value)  # type: ignore[union-attr]
            # ``.record`` is a common name; only flag it on trace-shaped
            # receivers.  The distinctive writers flag unconditionally.
            if attr == "record" and not (
                receiver == "trace" or receiver.endswith(".trace")
            ):
                continue
            yield self.violation(
                relpath,
                node,
                f"{receiver}.{attr}(...) writes a trace outside the hook "
                f"pipeline; emit through repro.hooks instead",
            )


class LaunchBracketRule(Rule):
    """Backend invocations in the runtime go through the hook pipeline.

    A function under ``repro/runtime/`` that calls ``.execute(...)`` or
    ``.run_mmo(...)`` must also call ``begin_launch`` and
    ``finish_launch`` — otherwise that dispatch path skips validation,
    fault injection and trace recording for every launch it issues.
    """

    name = "launch-bracketing"
    description = (
        "runtime functions calling backend .execute/.run_mmo also call "
        "pipeline begin_launch and finish_launch"
    )

    _BACKEND_CALLS = frozenset({"execute", "run_mmo"})

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("repro/runtime/")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            called: set[str] = set()
            backend_calls: list[ast.AST] = []
            for sub in ast.walk(node):
                attr = _call_attr(sub)
                if attr is None:
                    continue
                called.add(attr)
                if attr in self._BACKEND_CALLS:
                    backend_calls.append(sub)
            if not backend_calls:
                continue
            missing = {"begin_launch", "finish_launch"} - called
            for call in backend_calls:
                if missing:
                    yield self.violation(
                        relpath,
                        call,
                        f"{node.name}() invokes a backend without calling "
                        f"{' and '.join(sorted(missing))} — every dispatch "
                        f"path must run the hook pipeline",
                    )


class RawMatmulRule(Rule):
    """No raw numpy matrix products in backends or the sparse tier.

    ``A @ B`` / ``np.dot`` / ``np.matmul`` / ``np.einsum`` hardcode the
    (+,×) ring.  Backend inner loops must express products through the
    semiring's ⊗/⊕ callables (``repro.core.semiring``) so min-plus and
    friends compute min-plus, not GEMM.  A helper that legitimately
    reduces with numpy primitives *on behalf of a semiring* can be
    designated in :data:`SEMIRING_FOLD_HELPERS` (``"<relpath>::<func>"``)
    — the set is intentionally empty today.
    """

    name = "raw-matmul"
    description = (
        "no @, np.dot, np.matmul or np.einsum in repro/backends/ or "
        "repro/sparse/ outside designated semiring fold helpers"
    )

    #: Qualified "relpath::function" names exempt from the rule.
    SEMIRING_FOLD_HELPERS: frozenset[str] = frozenset()
    _PRODUCTS = frozenset({"dot", "matmul", "einsum"})

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("repro/backends/", "repro/sparse/"))

    def _exempt(self, relpath: str, func_stack: tuple[str, ...]) -> bool:
        return any(
            f"{relpath}::{name}" in self.SEMIRING_FOLD_HELPERS
            for name in func_stack
        )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator[Violation]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack = stack + (node.name,)
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                if not self._exempt(relpath, stack):
                    yield self.violation(
                        relpath,
                        node,
                        "raw `@` matrix product hardcodes the (+,x) ring; "
                        "fold through the semiring instead",
                    )
            attr = _call_attr(node)
            if attr in self._PRODUCTS:
                receiver = ast.unparse(node.func.value)  # type: ignore[union-attr]
                if receiver in ("np", "numpy") and not self._exempt(relpath, stack):
                    yield self.violation(
                        relpath,
                        node,
                        f"{receiver}.{attr}(...) hardcodes the (+,x) ring; "
                        f"fold through the semiring instead",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, stack)

        yield from visit(tree, ())


class LockDisciplineRule(Rule):
    """Documented lock-protected attributes are only touched under the lock.

    :class:`~repro.compile.cache.PlanCache` and
    :class:`~repro.runtime.trace.Trace` promise thread-safety; the
    promise holds only if every read and write of their shared state is
    lexically inside ``with self._lock:``.  ``__init__`` runs before the
    object can be shared, so it is exempt.
    """

    name = "lock-discipline"
    description = (
        "PlanCache/Trace protected attributes accessed only under "
        "`with self._lock:` (outside __init__)"
    )

    #: {(relpath, class name): attributes the class's lock protects}.
    PROTECTED: dict[tuple[str, str], frozenset[str]] = {
        ("repro/compile/cache.py", "PlanCache"): frozenset(
            {"_entries", "_hits", "_misses", "_evictions"}
        ),
        ("repro/runtime/trace.py", "Trace"): frozenset(
            {"records", "events", "compiles", "plans"}
        ),
        ("repro/plan/autotune.py", "AutotuneTable"): frozenset(
            {"_entries", "_plans", "_version"}
        ),
        ("repro/resilience/breaker.py", "BreakerBoard"): frozenset(
            {"_breakers"}
        ),
    }

    def applies_to(self, relpath: str) -> bool:
        return any(path == relpath for path, _ in self.PROTECTED)

    @staticmethod
    def _is_lock_guard(stmt: ast.With) -> bool:
        return any(
            isinstance(item.context_expr, ast.Attribute)
            and item.context_expr.attr == "_lock"
            and isinstance(item.context_expr.value, ast.Name)
            and item.context_expr.value.id == "self"
            for item in stmt.items
        )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        targets = {
            cls: attrs
            for (path, cls), attrs in self.PROTECTED.items()
            if path == relpath
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name not in targets:
                continue
            protected = targets[node.name]
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__":
                    continue
                yield from self._check_body(
                    method, protected, relpath, node.name, method.name, False
                )

    def _check_body(
        self,
        node: ast.AST,
        protected: frozenset[str],
        relpath: str,
        cls: str,
        method: str,
        under_lock: bool,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.With) and self._is_lock_guard(child):
                yield from self._check_body(
                    child, protected, relpath, cls, method, True
                )
                continue
            if (
                not under_lock
                and isinstance(child, ast.Attribute)
                and child.attr in protected
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"
            ):
                yield self.violation(
                    relpath,
                    child,
                    f"{cls}.{method} touches self.{child.attr} outside "
                    f"`with self._lock:` — torn reads/lost updates under "
                    f"concurrent launches",
                )
            yield from self._check_body(
                child, protected, relpath, cls, method, under_lock
            )


class BackendResolutionRule(Rule):
    """Dispatch sites resolve backends via the planner/registry, not names.

    With the planning stage in place, a runtime or resilience code path
    that looks up a backend by string literal — ``get_backend("sparse")``
    or ``if ctx.backend == "emulate":`` — is re-growing exactly the
    hardcoded dispatch the planner replaced: the choice stops flowing
    through capabilities, cost ranking and the autotune table.  Backend
    names as *configuration defaults* (dataclass field defaults,
    ``ExecutionContext(backend=...)`` construction) stay legal; only
    resolution (`get_backend`) and equality dispatch on ``.backend`` are
    flagged.
    """

    name = "backend-resolution"
    description = (
        "no get_backend(<string literal>) calls and no `.backend == "
        "<literal>` dispatch comparisons under repro/runtime/ or "
        "repro/resilience/ — backend choice flows through the "
        "context/planner/registry"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("repro/runtime/", "repro/resilience/"))

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                fname = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if (
                    fname == "get_backend"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    yield self.violation(
                        relpath,
                        node,
                        f"get_backend({node.args[0].value!r}) hardcodes a "
                        f"backend at a dispatch site; resolve through the "
                        f"context or the planner instead",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                names_backend = any(
                    isinstance(o, ast.Attribute) and o.attr == "backend"
                    for o in operands
                )
                literal = next(
                    (
                        o.value
                        for o in operands
                        if isinstance(o, ast.Constant)
                        and isinstance(o.value, str)
                    ),
                    None,
                )
                if (
                    names_backend
                    and literal is not None
                    and all(
                        isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                    )
                ):
                    yield self.violation(
                        relpath,
                        node,
                        f"comparing .backend against {literal!r} dispatches "
                        f"on a hardcoded name; use capabilities or the "
                        f"planner's ranking instead",
                    )


class SchedulerLoopRule(Rule):
    """Loop-shaped launch replay goes through the LaunchGraph scheduler.

    A ``for``/``while`` loop that calls ``execute_compiled`` per
    iteration is a hand-rolled scheduler: it re-grows exactly the five
    divergent orchestration loops the :mod:`repro.sched` refactor
    collapsed — no deterministic node ordinals, no backend thread-safety
    locks, no per-node resilience policy.  Outside :mod:`repro.sched`
    (the one place allowed to drive the seam, including its retry loop),
    replays must be expressed as launch nodes on a
    :class:`~repro.sched.graph.LaunchGraph` and handed to the context's
    scheduler.
    """

    name = "scheduler-loops"
    description = (
        "no execute_compiled calls inside for/while loops outside "
        "repro/sched/ — loop-shaped entry points orchestrate via a "
        "LaunchGraph run by the scheduler"
    )

    _LOOPS = (ast.For, ast.AsyncFor, ast.While)

    def applies_to(self, relpath: str) -> bool:
        if relpath.startswith("repro/sched/"):
            return False
        return relpath.startswith("repro/")

    @staticmethod
    def _is_execute_compiled(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "execute_compiled"
        return isinstance(func, ast.Attribute) and func.attr == "execute_compiled"

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, self._LOOPS):
                continue
            # Only the loop body/else replay per iteration; the iterable
            # expression evaluates once and walks separately anyway.
            for sub in ast.walk(node):
                if self._is_execute_compiled(sub):
                    yield self.violation(
                        relpath,
                        sub,
                        "execute_compiled called inside a loop — lower "
                        "the iteration onto a LaunchGraph and run it "
                        "through the scheduler (repro.sched) instead",
                    )


class ClockDisciplineRule(Rule):
    """Wall-clock reads and sleeps flow through the injectable Clock.

    A raw ``time.perf_counter()`` in dispatch code is invisible to the
    virtual clock: deadline tests flake, backoff schedules stop
    replaying, and chaos runs lose byte-identical determinism.  The one
    adapter over the stdlib is ``repro/resilience/clock.py``
    (:class:`~repro.resilience.clock.MonotonicClock`); everything else
    reads time through the context's
    :class:`~repro.resilience.clock.Clock`.  ``from time import ...`` is
    flagged wholesale — aliasing ``sleep`` locally is exactly the bypass
    the rule exists to catch.
    """

    name = "clock-discipline"
    description = (
        "no time.time/monotonic/perf_counter/sleep calls (or "
        "`from time import ...`) under repro/ outside "
        "repro/resilience/clock.py — wall time flows through the "
        "injectable Clock"
    )

    _BANNED = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "sleep",
        }
    )
    _ALLOWED_FILES = frozenset({"repro/resilience/clock.py"})

    def applies_to(self, relpath: str) -> bool:
        if relpath in self._ALLOWED_FILES:
            return False
        return relpath.startswith("repro/")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                yield self.violation(
                    relpath,
                    node,
                    "`from time import ...` bypasses the injectable Clock; "
                    "read time through repro.resilience.clock instead",
                )
                continue
            attr = _call_attr(node)
            if attr not in self._BANNED:
                continue
            receiver = ast.unparse(node.func.value)  # type: ignore[union-attr]
            if receiver == "time":
                yield self.violation(
                    relpath,
                    node,
                    f"time.{attr}(...) bypasses the injectable Clock — "
                    f"deadlines and backoff stop replaying under a virtual "
                    f"clock; use repro.resilience.clock instead",
                )


def default_rules() -> tuple[Rule, ...]:
    """Every invariant the repository enforces, in reporting order."""
    from repro.analysis.layering import ImportLayeringRule

    return (
        TraceWriteRule(),
        LaunchBracketRule(),
        RawMatmulRule(),
        LockDisciplineRule(),
        BackendResolutionRule(),
        SchedulerLoopRule(),
        ClockDisciplineRule(),
        ImportLayeringRule(),
    )


def lint_file(
    path: Path, relpath: str, rules: Iterable[Rule]
) -> list[Violation]:
    """Apply every applicable rule to one source file."""
    applicable = [rule for rule in rules if rule.applies_to(relpath)]
    if not applicable:
        return []
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                path=relpath,
                line=exc.lineno or 0,
                rule="parse",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    violations: list[Violation] = []
    for rule in applicable:
        violations.extend(rule.check(tree, relpath))
    return violations


def lint_paths(
    src_root: Path | str, rules: Iterable[Rule] | None = None
) -> list[Violation]:
    """Lint every ``.py`` file under ``src_root`` (the dir holding ``repro``).

    Returns violations sorted by path then line; an empty list means the
    tree satisfies every invariant.
    """
    root = Path(src_root)
    active = tuple(rules) if rules is not None else default_rules()
    violations: list[Violation] = []
    for path in sorted((root / "repro").rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        violations.extend(lint_file(path, relpath, active))
    violations.sort(key=lambda v: (v.path, v.line))
    return violations
