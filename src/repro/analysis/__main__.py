"""CLI entry: ``python -m repro.analysis [SRC_ROOT ...]``.

Lints every ``repro`` package found under the given source roots
(default: the root this installation was imported from) and exits
non-zero when any invariant is violated.  ``make check-static`` and
``tools/check_invariants.py`` both funnel through here.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.invariants import default_rules, lint_paths


def _default_root() -> Path:
    import repro  # lazy: the repro root re-exports the whole stack

    return Path(repro.__file__).resolve().parent.parent


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo-wide invariant lint.",
    )
    parser.add_argument(
        "roots",
        nargs="*",
        type=Path,
        help="source roots containing a repro/ package "
        "(default: the imported repro's parent)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the active rules and exit",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    roots = args.roots or [_default_root()]
    violations = []
    for root in roots:
        if not (root / "repro").is_dir():
            print(f"error: no repro/ package under {root}", file=sys.stderr)
            return 2
        violations.extend(lint_paths(root, rules))

    for violation in violations:
        print(violation)
    checked = ", ".join(str(r) for r in roots)
    if violations:
        print(f"\n{len(violations)} invariant violation(s) in {checked}")
        return 1
    print(f"invariant lint clean: {len(rules)} rules over {checked}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
