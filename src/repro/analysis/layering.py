"""One-way import layering across the ``repro`` packages.

The architecture is a stack — ``apps → runtime → compile → backends``
reads the dispatch flow, but the *import* direction is stricter: each
package may import only from its own layer or below, so the compile
layer can never grow a module-level dependency on the runtime that
imports it, and a backend can never reach up into an app.

Layer map (lower number = deeper, imported-by-everything):

====== =====================================================
layer  packages
====== =====================================================
0      ``core``
1      ``isa``, ``datasets``
2      ``hw``, ``compile``
3      ``hooks``, ``runtime``, ``sched``, ``sparse``
4      ``backends``, ``plan``, ``resilience``, ``timing``, ``hwmodel``
5      ``apps``
6      ``bench``, ``analysis``
====== =====================================================

Equal-layer imports are allowed: ``runtime`` and ``hooks`` form one
deliberate module-granular cycle (the pipeline lives in hooks, the
context in runtime), as do ``timing`` and ``hwmodel``.  Only
module-top-level imports count — ``if TYPE_CHECKING:`` blocks vanish at
runtime, and imports inside function bodies are the sanctioned way to
take a lazy upward reference (``# lazy: backends import us``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.invariants import Rule, Violation

__all__ = ["LAYERS", "ImportLayeringRule"]

#: Package → layer.  The bare ``repro`` root (its ``__init__`` re-exports
#: the public API) sits above everything.
LAYERS: dict[str, int] = {
    "core": 0,
    "isa": 1,
    "datasets": 1,
    "hw": 2,
    "compile": 2,
    "hooks": 3,
    "runtime": 3,
    "sched": 3,
    "sparse": 3,
    "backends": 4,
    "plan": 4,
    "resilience": 4,
    "timing": 4,
    "hwmodel": 4,
    "apps": 5,
    "bench": 6,
    "analysis": 6,
}

_ROOT_LAYER = max(LAYERS.values()) + 1


def _package_of(relpath: str) -> str | None:
    """The repro subpackage a source path belongs to (``None`` = root)."""
    parts = relpath.split("/")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    if len(parts) == 2:  # repro/__init__.py or a root-level module
        return None
    return parts[1]


def _layer_of(package: str | None) -> int:
    if package is None:
        return _ROOT_LAYER
    return LAYERS.get(package, _ROOT_LAYER)


def _target_package(module: str) -> str | None:
    """The repro subpackage an absolute import target lives in."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else None


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class ImportLayeringRule(Rule):
    """Module-level imports may only point at the same layer or deeper."""

    name = "import-layering"
    description = (
        "module-top-level imports respect the one-way package layering "
        "(core < isa < compile < runtime < backends < apps); TYPE_CHECKING "
        "and function-local imports are exempt"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("repro/")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Violation]:
        importer_pkg = _package_of(relpath)
        importer_layer = _layer_of(importer_pkg)
        for stmt in self._module_level(tree.body):
            for module, node in self._import_targets(stmt):
                target_pkg = _target_package(module)
                if target_pkg is None and not module.startswith("repro"):
                    continue  # stdlib / third-party
                target_layer = _layer_of(target_pkg)
                if target_layer > importer_layer:
                    yield self.violation(
                        relpath,
                        node,
                        f"repro.{importer_pkg or ''} (layer {importer_layer}) "
                        f"imports {module} (layer {target_layer}) at module "
                        f"level — upward imports must be TYPE_CHECKING-only "
                        f"or function-local",
                    )

    def _module_level(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """Statements that execute at import time, minus typing guards."""
        for stmt in body:
            if isinstance(stmt, ast.If):
                if _is_type_checking_guard(stmt):
                    yield from self._module_level(stmt.orelse)
                else:
                    yield from self._module_level(stmt.body)
                    yield from self._module_level(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                yield from self._module_level(stmt.body)
                for handler in stmt.handlers:
                    yield from self._module_level(handler.body)
                yield from self._module_level(stmt.orelse)
                yield from self._module_level(stmt.finalbody)
            else:
                yield stmt

    @staticmethod
    def _import_targets(stmt: ast.stmt) -> Iterator[tuple[str, ast.stmt]]:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                yield alias.name, stmt
        elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0:
            # Relative imports stay inside their own package: same layer,
            # always legal — only absolute targets are checked.
            if stmt.module:
                yield stmt.module, stmt
