"""Repo-wide static analysis: source-level invariants the tests can't pin.

The companion of the IR-level verifier (:mod:`repro.isa.verifier`): where
``verify_program`` proves properties of each lowered warp program, this
package proves properties of the source tree itself — observability
writes stay behind the hook pipeline, every dispatch path is
launch-bracketed, backends never fall back to raw GEMM, lock-protected
state stays under its lock, loop-shaped launch replay goes through the
:mod:`repro.sched` scheduler, wall time flows through the injectable
clock, and package imports flow one way.

Run it:

- ``python -m repro.analysis`` (or ``tools/check_invariants.py``)
- ``make check-static`` — the CI gate, zero violations expected.

See :mod:`repro.analysis.invariants` for the rule engine and the
checklist for adding a rule; :mod:`repro.analysis.layering` for the
package layer map.
"""

from repro.analysis.invariants import (
    BackendResolutionRule,
    ClockDisciplineRule,
    LaunchBracketRule,
    LockDisciplineRule,
    RawMatmulRule,
    Rule,
    SchedulerLoopRule,
    TraceWriteRule,
    Violation,
    default_rules,
    lint_file,
    lint_paths,
)
from repro.analysis.layering import LAYERS, ImportLayeringRule

__all__ = [
    "LAYERS",
    "BackendResolutionRule",
    "ClockDisciplineRule",
    "ImportLayeringRule",
    "LaunchBracketRule",
    "LockDisciplineRule",
    "RawMatmulRule",
    "Rule",
    "SchedulerLoopRule",
    "TraceWriteRule",
    "Violation",
    "default_rules",
    "lint_file",
    "lint_paths",
]
