"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works without build isolation (this repo is
developed in offline environments); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
