"""Quickstart: the SIMD² programming model in five minutes.

Shows the three layers of the library:

1. whole-matrix semiring operations (``repro.core.mmo``),
2. the tiled runtime with implicit 16×16 tiling, backends selected
   through an ambient ``ExecutionContext`` with per-launch tracing,
3. the instruction-level path: build a tile program through the Table-3
   API, assemble/encode it, and execute it on the hardware emulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import TILE, mmo, semiring_names
from repro.hw import SharedMemory, WarpExecutor
from repro.isa import ElementType, disassemble, encode_program
from repro.runtime import TileProgramBuilder, Trace, mmo_tiled, use_context


def whole_matrix_operations() -> None:
    print("=== 1. Whole-matrix semiring operations ===")
    print(f"The nine SIMD2 semirings: {', '.join(semiring_names())}\n")

    # A tiny 4-vertex road network: adjacency with +inf for "no road".
    inf = np.inf
    roads = np.array(
        [
            [0.0, 3.0, inf, 7.0],
            [3.0, 0.0, 1.0, inf],
            [inf, 1.0, 0.0, 2.0],
            [7.0, inf, 2.0, 0.0],
        ]
    )
    # One min-plus step: best two-hop distances.
    two_hop = mmo("min-plus", roads, roads, roads)
    print("direct distance 0→3 :", roads[0, 3])
    print("after one min-plus  :", two_hop[0, 3], "(via 1 and 2)\n")


def tiled_runtime() -> None:
    print("=== 2. The tiled runtime (any shape, any registered backend) ===")
    rng = np.random.default_rng(0)
    a = rng.integers(0, 5, (50, 30)).astype(float)
    b = rng.integers(0, 5, (30, 40)).astype(float)

    # Backends are picked through an ambient ExecutionContext: install one
    # with use_context() and every launch underneath routes through it —
    # no per-call keywords.  A Trace on the context records each launch.
    vectorized, stats = mmo_tiled("max-plus", a, b)
    trace = Trace()
    with use_context(backend="emulate", trace=trace):
        emulated, emu_stats = mmo_tiled("max-plus", a, b)
    assert np.array_equal(vectorized, emulated)
    print(f"50x40x30 max-plus  -> {stats.warp_programs} warp programs, "
          f"{stats.mmo_instructions} mmo instructions")
    print(f"emulator executed  -> {emu_stats.execution.unit_ops} 4x4x4 unit ops, "
          "results identical to the vectorised backend")
    record = trace.records[0]
    print(f"traced             -> api={record.api} backend={record.backend} "
          f"tiles={record.tiles} cycles~{record.cycle_estimate}\n")


def instruction_level() -> None:
    print("=== 3. Down to the metal: one warp tile program ===")
    builder = TileProgramBuilder()
    a = builder.matrix("a")
    b = builder.matrix("b")
    acc = builder.matrix("accumulator")
    builder.loadmatrix(a, addr=0, ld=TILE)
    builder.loadmatrix(b, addr=TILE * TILE, ld=TILE)
    builder.fillmatrix(acc, math.inf)
    builder.mmo(acc, a, b, acc, "minplus")
    builder.storematrix(addr=2 * TILE * TILE, source=acc, ld=TILE)
    program = builder.build()

    print(disassemble(list(program)))
    print(f"binary: {len(encode_program(list(program)))} bytes\n")

    shm = SharedMemory()
    rng = np.random.default_rng(1)
    a_tile = rng.integers(1, 9, (TILE, TILE)).astype(float)
    b_tile = rng.integers(1, 9, (TILE, TILE)).astype(float)
    shm.write_matrix(0, a_tile, ElementType.F16)
    shm.write_matrix(TILE * TILE, b_tile, ElementType.F16)
    stats = WarpExecutor(shm).run(program)
    result = shm.read_matrix(2 * TILE * TILE, (TILE, TILE), ElementType.F32)
    expected = mmo("min-plus", a_tile, b_tile)
    assert np.array_equal(result, expected)
    print(f"executed {stats.instructions} instructions, {stats.unit_ops} unit ops; "
          "output matches the oracle\n")


if __name__ == "__main__":
    whole_matrix_operations()
    tiled_runtime()
    instruction_level()
    print("Quickstart complete.")
