"""KNN classification with the add-norm (plus-norm) instruction.

Builds a labelled point cloud, classifies held-out queries with
k-nearest-neighbour voting, and shows that the SIMD²-ized distance kernel
(the plus-norm mmo) matches the KNN-CUDA-style baseline exactly while
reporting the tile statistics the accelerator would execute.

Run:  python examples/knn_classification.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import knn_baseline, knn_simd2
from repro.datasets import PointCloudSpec, gaussian_clusters
from repro.timing import app_times


def classify(indices: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Majority vote over each query's neighbour labels."""
    votes = labels[indices]  # (queries, k)
    return np.array(
        [np.bincount(row, minlength=labels.max() + 1).argmax() for row in votes]
    )


def main() -> None:
    spec = PointCloudSpec(num_points=400, dimensions=24, num_clusters=5, seed=7)
    points, labels = gaussian_clusters(spec)
    split = 300
    train_x, train_y = points[:split], labels[:split]
    test_x, test_y = points[split:], labels[split:]
    k = 7
    print(f"{split} training points, {len(test_x)} queries, "
          f"{spec.dimensions}-d, {spec.num_clusters} classes, k={k}")

    baseline = knn_baseline(test_x, train_x, k)
    simd2 = knn_simd2(test_x, train_x, k)

    assert np.array_equal(baseline.indices, simd2.indices)
    assert np.array_equal(baseline.distances, simd2.distances)
    print("\nSIMD2 plus-norm distances match the baseline bit-for-bit")
    stats = simd2.kernel_stats
    print(f"tile work: {stats.warp_programs} warp programs x "
          f"{stats.tiles_k} inner tiles = {stats.mmo_instructions} addnorm mmos "
          f"({stats.unit_ops} unit ops)")

    predictions = classify(simd2.indices, train_y)
    accuracy = (predictions == test_y).mean()
    print(f"\nclassification accuracy: {accuracy:.1%}")

    print("\nModelled paper-scale performance (Fig 11, KNN):")
    for size in (4096, 8192, 16384):
        times = app_times("KNN", size)
        print(f"  n={size:6d}: {times.speedup_units:5.2f}x over KNN-CUDA, "
              f"{times.unit_gap:4.2f}x over SIMD2-on-CUDA-cores")


if __name__ == "__main__":
    main()
