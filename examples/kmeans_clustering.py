"""K-means clustering with the add-norm instruction (plus SSSP bonus).

Clusters a synthetic point cloud with Lloyd's algorithm where every
assignment step is one ``plus-norm`` mmo, compares against the scalar
baseline, and shows the single-source (vxm) siblings of the all-pairs
algorithms for good measure.

Run:  python examples/kmeans_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import kmeans_baseline, kmeans_simd2
from repro.datasets import GraphSpec, PointCloudSpec, distance_graph, gaussian_clusters
from repro.runtime import sssp


def main() -> None:
    spec = PointCloudSpec(num_points=300, dimensions=16, num_clusters=4, seed=11)
    points, truth = gaussian_clusters(spec)
    k = 4
    print(f"{spec.num_points} points, {spec.dimensions}-d, k={k}")

    base = kmeans_baseline(points, k, seed=3)
    simd = kmeans_simd2(points, k, seed=3)
    assert np.array_equal(base.assignments, simd.assignments)
    print(f"\nSIMD2 and baseline agree after {simd.iterations} iterations "
          f"(converged={simd.converged})")
    print(f"inertia: {simd.inertia:.1f}")

    # Purity against the generating labels.
    purity = sum(
        np.bincount(truth[simd.assignments == c]).max()
        for c in range(k)
        if (simd.assignments == c).any()
    ) / len(points)
    print(f"cluster purity vs ground truth: {purity:.1%}")

    # Bonus: the single-source sibling of APSP via vector-matrix products.
    print("\nSingle-source shortest paths over vxm (min-plus):")
    adj = distance_graph(GraphSpec(36, 0.15, seed=2))
    result = sssp(adj, source=0)
    reachable = np.isfinite(result.values).sum()
    print(f"  source 0 reaches {reachable}/{adj.shape[0]} vertices in "
          f"{result.iterations} relaxations; "
          f"nearest: {np.sort(result.values)[:4]}")


if __name__ == "__main__":
    main()
