"""Extensions tour: sparse closure, the matrix API, tracing, verification.

Shows the pieces built beyond the paper's core evaluation:

1. the GraphBLAS-flavoured :class:`SemiringMatrix` API,
2. the GAMMA-style sparse closure (paper §6.5 future work): APSP on a
   sparse graph over CSR with work accounting vs the dense algorithm,
3. the ``sparse`` *backend*: the same spGEMM routed transparently under
   unmodified dense-API code via ``use_context(backend="sparse")``,
4. instruction-level tooling: static verification and execution tracing
   of a generated tile program.

Run:  python examples/sparse_and_tooling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SemiringMatrix
from repro.datasets import GraphSpec, distance_graph
from repro.hw import ExecutionTrace, SharedMemory, WarpExecutor
from repro.isa import ElementType, MmoOpcode, verify_program
from repro.runtime import Trace, closure, use_context
from repro.runtime.kernels import build_tile_mmo_program
from repro.sparse import CsrMatrix, sparse_closure


def matrix_api() -> None:
    print("=== 1. SemiringMatrix: algorithms as linear algebra ===")
    inf = np.inf
    roads = SemiringMatrix(
        [[0.0, 3.0, inf, 7.0],
         [3.0, 0.0, 1.0, inf],
         [inf, 1.0, 0.0, 2.0],
         [7.0, inf, 2.0, 0.0]],
        "min-plus",
    )
    two_hop = roads @ roads
    closed, result = roads.closure()
    print(f"direct 0→3: {roads[0, 3]},  two-hop: {two_hop[0, 3]},  "
          f"closure: {closed[0, 3]} in {result.iterations} iterations\n")


def sparse_apsp() -> None:
    print("=== 2. Sparse (GAMMA-style) closure on a CSR graph ===")
    n = 64
    adjacency = distance_graph(GraphSpec(n, 0.05, seed=17))
    csr = CsrMatrix.from_dense(adjacency, implicit=np.inf)
    print(f"graph: {n} vertices, {csr.nnz} stored entries "
          f"({csr.sparsity:.1%} sparse)")

    sparse_result = sparse_closure("min-plus", csr)
    dense_result = closure("min-plus", adjacency)
    assert np.array_equal(
        sparse_result.matrix.to_dense_for("min-plus"),
        dense_result.matrix,
    )
    dense_products = sparse_result.iterations * n**3
    print(f"sparse closure: {sparse_result.iterations} iterations, "
          f"{sparse_result.total_products} scalar products "
          f"(dense algorithm: {dense_products}; "
          f"{1 - sparse_result.total_products / dense_products:.1%} work skipped)")
    print(f"distance matrix fills in: {sparse_result.final_nnz} finite entries\n")


def sparse_backend_routing() -> None:
    print("=== 3. The sparse backend: spGEMM under unmodified dense code ===")
    adjacency = distance_graph(GraphSpec(48, 0.08, seed=23))

    # The exact same closure() call — no sparse-aware code anywhere in the
    # caller — routed through CSR spGEMM by the ambient context, with a
    # Trace summarising every launch it made.
    trace = Trace()
    with use_context(backend="sparse", trace=trace):
        routed = closure("min-plus", adjacency)
    dense = closure("min-plus", adjacency)
    assert np.array_equal(routed.matrix, dense.matrix)

    summary = trace.summary()
    products = summary.spgemm_products
    dense_products = summary.launches * 48**3
    print(f"closure made {summary.launches} launches on "
          f"{'+'.join(sorted(summary.by_backend))}: "
          f"{summary.mmo_instructions} mmo-equivalents, "
          f"{products} spGEMM products "
          f"({1 - products / dense_products:.1%} of dense work skipped), "
          "distances identical to the dense backend\n")


def tooling() -> None:
    print("=== 4. Tile-program tooling: verify, then trace ===")
    program, c_addr, d_addr = build_tile_mmo_program(
        MmoOpcode.MINPLUS, tiles_k=2, boolean=False
    )
    report = verify_program(program)
    print(f"static verification: ok={report.ok}, "
          f"{len(report.registers_used)} registers, "
          f"needs {report.shared_memory_bytes} bytes of shared memory")

    shm = SharedMemory()
    rng = np.random.default_rng(3)
    for kk in range(2):
        shm.write_matrix(kk * 256, rng.integers(1, 9, (16, 16)), ElementType.F16)
        shm.write_matrix((2 + kk) * 256, rng.integers(1, 9, (16, 16)), ElementType.F16)
    shm.write_matrix(c_addr, np.full((16, 16), np.inf), ElementType.F32)

    trace = ExecutionTrace(limit=4)
    WarpExecutor(shm, observer=trace).run(program)
    print("\nfirst retired instructions:")
    print(trace.format())


if __name__ == "__main__":
    matrix_api()
    sparse_apsp()
    sparse_backend_routing()
    tooling()
