"""All-pairs shortest paths on a road-style network — the paper's Figure 7.

Mirrors the paper's host-side CUDA workflow step by step on the emulated
device: allocate device buffers, copy the adjacency matrix in, iterate
``simd2_minplus`` with a convergence check, copy the distances out — then
validates the result against the ECL-APSP-style tiled Floyd–Warshall
baseline and reports iteration statistics for Leyzorek vs Bellman-Ford.

Run:  python examples/apsp_routing.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import apsp_baseline
from repro.datasets import GraphSpec, distance_graph
from repro.hw import Simd2Device
from repro.runtime import closure, mmo_tiled
from repro.timing import app_times


def figure7_host_workflow(adjacency: np.ndarray) -> np.ndarray:
    """The paper's Figure 7 loop, written against the emulated device."""
    device = Simd2Device(sm_count=4)
    n = adjacency.shape[0]

    # cudaMalloc + cudaMemcpy(H2D)
    device.malloc("adj_mat_d", (n, n), np.float32)
    device.malloc("dist_d", (n, n), np.float32)
    device.memcpy_h2d("adj_mat_d", adjacency)
    device.memcpy_h2d("dist_d", adjacency)

    converge = False
    iterations = 0
    while not converge:
        dist = device.global_memory["dist_d"]
        adj = device.global_memory["adj_mat_d"]
        # simd2_minplus(adj, dist, dist, delta): one whole-matrix mmo on
        # the SIMD² units (instruction-level emulation).
        delta, _ = mmo_tiled("min-plus", dist, adj, dist, backend="emulate", device=device)
        # check_convergence: a pure element-wise GPU kernel.
        converge = bool(np.array_equal(delta, dist))
        device.global_memory["dist_d"][...] = delta
        iterations += 1

    result = device.memcpy_d2h("dist_d")
    print(f"  device ran {device.kernel_launches} kernel launches, "
          f"{device.stats.mmos} warp-level mmo instructions, "
          f"{iterations} Bellman-Ford iterations")
    return result


def main() -> None:
    spec = GraphSpec(num_vertices=48, edge_probability=0.12, seed=42)
    adjacency = distance_graph(spec)
    print(f"Road network: {spec.num_vertices} junctions, "
          f"{int(np.isfinite(adjacency).sum() - spec.num_vertices)} directed roads")

    print("\n[1] Figure-7 workflow on the emulated device (Bellman-Ford):")
    distances = figure7_host_workflow(adjacency)

    print("\n[2] Validation against the tiled Floyd-Warshall baseline:")
    baseline = apsp_baseline(adjacency)
    assert np.array_equal(distances, baseline.distances)
    reachable = np.isfinite(distances).mean()
    print(f"  distances match ECL-APSP-style baseline exactly; "
          f"{reachable:.0%} of pairs reachable")

    print("\n[3] Algorithmic comparison (paper Section 6.4):")
    for method in ("bellman-ford", "leyzorek"):
        result = closure("min-plus", adjacency, method=method)
        print(f"  {method:13s}: {result.iterations} iterations, "
              f"{result.total_mmo_instructions} tile mmos, converged={result.converged}")

    print("\n[4] Modelled paper-scale performance (RTX 3080 class, Fig 11):")
    for size in (4096, 8192, 16384):
        times = app_times("APSP", size)
        print(f"  n={size:6d}: baseline {times.baseline_s*1e3:8.1f} ms, "
              f"SIMD2 units {times.simd2_units_s*1e3:7.1f} ms "
              f"-> {times.speedup_units:5.2f}x speedup")


if __name__ == "__main__":
    main()
