"""Architect's tour: area, power, energy, roofline and the design space.

Uses the modelling half of the library the way Section 6.1 of the paper
does — compose unit areas, scale precision, place kernels on rooflines,
and compare the combined SIMD² unit against the alternatives.

Run:  python examples/design_exploration.py
"""

from __future__ import annotations

from repro.hwmodel import (
    ALL_SIMD2_EXTENSIONS,
    app_energy,
    combined_unit_area,
    die_overhead_fractions,
    mma_unit_area,
    simd2_unit_area,
    standalone_total_area,
    unit_power_w,
)
from repro.isa import MmoOpcode
from repro.timing import app_times, design_space, mmo_roofline


def unit_areas() -> None:
    print("=== Unit area composition (16-bit, baseline MMA = 1) ===")
    print(f"baseline MMA unit        : {mma_unit_area(16):.3f}")
    for opcode in (MmoOpcode.MINPLUS, MmoOpcode.MINMAX, MmoOpcode.ADDNORM):
        print(f"MMA + {opcode.mnemonic:8s}          : {combined_unit_area([opcode]):.3f}")
    print(f"full SIMD2 unit          : {simd2_unit_area(16):.3f}  (paper: 1.69)")
    print(f"8 standalone accelerators: {standalone_total_area():.3f}  (paper: 2.96)")
    print(f"power MMA -> SIMD2       : {unit_power_w():.2f} W -> "
          f"{unit_power_w(ALL_SIMD2_EXTENSIONS):.2f} W")
    sm_frac, die_frac = die_overhead_fractions()
    print(f"chip overhead            : {sm_frac:.1%} of an SM, {die_frac:.1%} of the die\n")

    print("precision sweep (MMA / SIMD2):")
    for bits in (8, 16, 32, 64):
        print(f"  {bits:2d}-bit: {mma_unit_area(bits):6.2f} / {simd2_unit_area(bits):6.2f}")
    print()


def rooflines() -> None:
    print("=== Where kernels sit on the roofline ===")
    for label, (m, n, k) in [
        ("square 4096^3 min-plus", (4096, 4096, 4096)),
        ("thin-k panel 8192x8192x16", (8192, 8192, 16)),
    ]:
        cuda, simd2 = mmo_roofline(MmoOpcode.MINPLUS, m, n, k)
        print(f"{label:28s}: intensity {simd2.intensity:8.1f} pairs/B -> "
              f"SIMD2 {simd2.bound.value}-bound "
              f"({simd2.roof_fraction:.0%} of ceiling), "
              f"CUDA {cuda.bound.value}-bound")
    print()


def energy_and_design_space() -> None:
    print("=== Energy (Medium inputs) ===")
    for app in ("APSP", "MCP", "KNN", "MST"):
        from repro.timing import APP_SIZES

        energy = app_energy(app_times(app, APP_SIZES[app][1]))
        print(f"  {app:5s}: baseline {energy.baseline_j:8.2f} J -> "
              f"SIMD2 {energy.simd2_units_j:7.2f} J  "
              f"({energy.energy_gain:5.2f}x less energy)")

    print("\n=== The design space (geomean speedup per mm2 of added die) ===")
    for point in design_space():
        print(f"  {point.design:17s}: +{point.extra_die_mm2:5.1f} mm2, "
              f"{point.geomean_speedup:5.2f}x gmean, "
              f"merit {point.speedup_per_mm2:6.3f}")


if __name__ == "__main__":
    unit_areas()
    rooflines()
    energy_and_design_space()
