"""Minimum spanning tree of a network via the min-max instruction.

Designs a minimum-cost backbone for a randomly generated network: the
SIMD² version computes all-pairs *minimax* (bottleneck) distances with the
min-max closure and selects exactly the edges whose weight equals the
minimax distance of their endpoints — the cycle property.  Kruskal's
algorithm (the CUDA-MST-style baseline) verifies the result.

Run:  python examples/mst_network.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import minimax_matrix, mst_baseline, mst_simd2
from repro.datasets import GraphSpec, undirected_distance_graph
from repro.timing import app_times


def main() -> None:
    spec = GraphSpec(num_vertices=40, edge_probability=0.15, seed=9)
    weights = undirected_distance_graph(spec)
    num_edges = int(np.isfinite(np.triu(weights, k=1)).sum())
    print(f"network: {spec.num_vertices} sites, {num_edges} candidate links")

    kruskal = mst_baseline(weights)
    simd2 = mst_simd2(weights)

    assert simd2.edges == kruskal.edges
    assert abs(simd2.total_weight - kruskal.total_weight) < 1e-9
    print(f"\nbackbone: {len(simd2.edges)} links, total cost {simd2.total_weight:.3f}")
    print("SIMD2 min-max closure selects exactly Kruskal's tree")

    closure_result = simd2.closure_result
    print(f"closure: {closure_result.iterations} Leyzorek iterations "
          f"({closure_result.total_mmo_instructions} tile mmos), "
          f"converged={closure_result.converged}")

    # A sample of bottleneck (minimax) distances — useful on their own for
    # capacity planning: the worst single link on the best path.
    bottleneck = minimax_matrix(weights).matrix
    u, v = 0, spec.num_vertices - 1
    print(f"\nbottleneck cost between site {u} and site {v}: {bottleneck[u, v]:.3f}")

    print("\nModelled paper-scale performance (Fig 11, MST):")
    for size in (1024, 2048, 4096):
        times = app_times("MST", size)
        trend = "wins" if times.speedup_units > 1 else "loses (paper: degrades at Large)"
        print(f"  n={size:5d}: {times.speedup_units:5.2f}x vs Kruskal -> {trend}")


if __name__ == "__main__":
    main()
