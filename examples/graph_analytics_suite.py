"""A graph-analytics tour: one generated graph, five SIMD² instructions.

Runs the full path-problem family the paper motivates — reachability
(or-and), shortest paths (min-plus), critical paths (max-plus), maximum
capacity (max-min) and maximum reliability (max-mul) — each validated
against its classical baseline, and prints the modelled Figure 11/13
speedups for the whole application suite.

Run:  python examples/graph_analytics_suite.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import (
    aplp_baseline,
    aplp_simd2,
    apsp_baseline,
    apsp_simd2,
    gtc_baseline,
    gtc_simd2,
    max_capacity_baseline,
    max_capacity_simd2,
    max_reliability_baseline,
    max_reliability_simd2,
)
from repro.datasets import (
    GraphSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    reliability_graph,
)
from repro.timing import APP_SIZES, APPS, app_times


def main() -> None:
    spec = GraphSpec(num_vertices=56, edge_probability=0.1, seed=123)
    print(f"graph workloads: {spec.num_vertices} vertices, p={spec.edge_probability}\n")

    # --- reachability: or-and ------------------------------------------
    adj = boolean_graph(spec, reflexive=False)
    base = gtc_baseline(adj)
    simd = gtc_simd2(adj)
    assert np.array_equal(base.reachable, simd.reachable)
    print(f"or-and   GTC   : {simd.reachable.mean():5.1%} of pairs connected "
          f"({simd.closure_result.iterations} iterations)")

    # --- shortest paths: min-plus --------------------------------------
    dist_adj = distance_graph(spec)
    base_d = apsp_baseline(dist_adj)
    simd_d = apsp_simd2(dist_adj)
    assert np.array_equal(base_d.distances, simd_d.distances)
    finite = simd_d.distances[np.isfinite(simd_d.distances)]
    print(f"min-plus APSP  : mean shortest distance {finite.mean():.2f}")

    # --- critical paths: max-plus --------------------------------------
    dag = dag_distance_graph(spec)
    base_l = aplp_baseline(dag)
    simd_l = aplp_simd2(dag)
    assert np.array_equal(base_l.lengths, simd_l.lengths)
    longest = simd_l.lengths[np.isfinite(simd_l.lengths)].max()
    print(f"max-plus APLP  : critical path length {longest:.2f}")

    # --- capacity: max-min ----------------------------------------------
    cap = capacity_graph(spec, maximize=True)
    base_c = max_capacity_baseline(cap)
    simd_c = max_capacity_simd2(cap)
    assert np.array_equal(base_c.values, simd_c.values)
    offdiag = simd_c.values[~np.eye(spec.num_vertices, dtype=bool)]
    print(f"max-min  MaxCP : best capacity {offdiag[np.isfinite(offdiag)].max():.2f}")

    # --- reliability: max-mul --------------------------------------------
    rel = reliability_graph(spec, maximize=True)
    base_r = max_reliability_baseline(rel)
    simd_r = max_reliability_simd2(rel)
    np.testing.assert_allclose(simd_r.values, base_r.values, rtol=1e-2, atol=1e-4)
    print(f"max-mul  MaxRP : most reliable route "
          f"{simd_r.values[~np.eye(spec.num_vertices, dtype=bool)].max():.3f} "
          "(fp16 datapath, validated to fp32 baseline within tolerance)")

    # --- modelled Figure 11 summary --------------------------------------
    print("\nModelled paper-scale speedups (Fig 11 / Fig 13 sparse):")
    header = f"{'app':6s} {'size':>6s} {'dense':>8s} {'sparse':>8s}"
    print(header)
    for app in APPS:
        size = APP_SIZES[app][1]  # Medium
        dense = app_times(app, size).speedup_units
        sparse = app_times(app, size, sparse_unit=True).speedup_units
        print(f"{app:6s} {size:6d} {dense:7.2f}x {sparse:7.2f}x")


if __name__ == "__main__":
    main()
