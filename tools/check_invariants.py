#!/usr/bin/env python
"""Run the repo-wide invariant lint (thin wrapper over ``repro.analysis``).

Usable without installing the package — inserts ``src/`` on ``sys.path``
and delegates to ``python -m repro.analysis``.  Exit status: 0 clean,
1 violations, 2 usage error.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:] or [str(SRC_ROOT)]
    raise SystemExit(main(argv))
