"""Figure 8: the validation workflow across the full application suite.

Benchmarks the three-way validation (baseline vs vectorised vs emulated)
per application and prints the suite-wide validation table.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table, validation_rows
from repro.bench.evaluation import EVALUATION_SUITE, evaluate_application


@pytest.mark.parametrize("app", sorted(EVALUATION_SUITE), ids=str)
def test_validate_application(benchmark, app):
    evaluation = benchmark(evaluate_application, app)
    assert evaluation.validated
    assert evaluation.emulation_consistent


def test_validation_table(benchmark, save_table):
    rows = benchmark(validation_rows)
    save_table("fig08_validation", render_table(rows, title="Figure 8 validation flow"))
    assert all(row["validated"] for row in rows)
    assert all(row["emulation_consistent"] for row in rows)
