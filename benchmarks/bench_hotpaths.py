"""Hot-path wall-clock tracking: emulator MMO and spGEMM, before vs after.

Standalone script (not a pytest benchmark): times the seed's scalar
decompositions — kept in-tree as ``Simd2Device(batched_mmo=False)`` and
``spgemm_reference`` — against the vectorized paths that replaced them on
the hot loops, asserts the results are bit-identical, and writes a JSON
artifact so the perf trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # smoke
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --full \
        --out benchmarks/results/hotpaths.json                    # artifact

Smoke mode runs small sizes in a few seconds (wired to ``make bench-smoke``
and CI); ``--full`` adds the acceptance-criteria points: 512² emulate
(scalar vs batched, the ≥10× target), 1024² emulate, and a 4096² Figure-14
sparse point.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.hw.device import Simd2Device
from repro.runtime.kernels import mmo_tiled
from repro.sparse import CsrMatrix, spgemm, spgemm_reference


def _emulate_case(n: int, *, batched: bool, seed: int = 0):
    # Continuous floats, not integers: integer-valued operands sum exactly
    # and would let accumulation-order divergences pass the parity assert.
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) * 8 + 0.5
    b = rng.random((n, n)) * 8 + 0.5
    device = Simd2Device(sm_count=4, batched_mmo=batched)
    t0 = time.perf_counter()
    result, stats = mmo_tiled("plus-mul", a, b, backend="emulate", device=device)
    seconds = time.perf_counter() - t0
    return result, stats, seconds


def _spgemm_inputs(n: int, density: float, seed: int = 11):
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((n, n)) < density, rng.random((n, n)) * 8 + 0.5, 0.0
    )
    return CsrMatrix.from_dense(dense)


def bench_emulate(records: list[dict], n: int, *, compare_scalar: bool) -> None:
    result, stats, seconds = _emulate_case(n, batched=True)
    records.append(
        {"case": "emulate_mmo", "n": n, "mode": "batched", "seconds": seconds}
    )
    print(f"emulate {n:5d}²  batched  {seconds:8.3f}s  "
          f"(unit_ops={stats.execution.unit_ops})")
    if compare_scalar:
        ref, ref_stats, ref_seconds = _emulate_case(n, batched=False)
        if not np.array_equal(result, ref):
            raise SystemExit(f"emulate {n}²: batched result != scalar result")
        if stats.execution.unit_ops != ref_stats.execution.unit_ops:
            raise SystemExit(f"emulate {n}²: batched unit_ops != scalar unit_ops")
        records.append(
            {"case": "emulate_mmo", "n": n, "mode": "scalar", "seconds": ref_seconds}
        )
        print(f"emulate {n:5d}²  scalar   {ref_seconds:8.3f}s  "
              f"(speedup {ref_seconds / seconds:5.1f}x, bit-identical)")


def bench_spgemm(
    records: list[dict], n: int, density: float, *, compare_reference: bool
) -> None:
    csr = _spgemm_inputs(n, density)
    t0 = time.perf_counter()
    result, stats = spgemm("plus-mul", csr, csr)
    seconds = time.perf_counter() - t0
    records.append(
        {
            "case": "spgemm", "n": n, "density": density, "mode": "vectorized",
            "seconds": seconds, "products": stats.products,
        }
    )
    print(f"spgemm  {n:5d}² d={density:.2f} vectorized {seconds:8.3f}s  "
          f"(products={stats.products})")
    if compare_reference:
        t0 = time.perf_counter()
        ref, ref_stats = spgemm_reference("plus-mul", csr, csr)
        ref_seconds = time.perf_counter() - t0
        same = (
            np.array_equal(result.indptr, ref.indptr)
            and np.array_equal(result.indices, ref.indices)
            and np.array_equal(result.data, ref.data)
            and stats.products == ref_stats.products
        )
        if not same:
            raise SystemExit(f"spgemm {n}²: vectorized result != reference")
        records.append(
            {
                "case": "spgemm", "n": n, "density": density, "mode": "scalar",
                "seconds": ref_seconds, "products": ref_stats.products,
            }
        )
        print(f"spgemm  {n:5d}² d={density:.2f} scalar     {ref_seconds:8.3f}s  "
              f"(speedup {ref_seconds / seconds:5.1f}x, bit-identical)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="add the paper-scale points (512²/1024² emulate, 4096² spGEMM)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    records: list[dict] = []
    bench_emulate(records, 128, compare_scalar=True)
    bench_spgemm(records, 512, 0.05, compare_reference=True)
    if args.full:
        bench_emulate(records, 256, compare_scalar=True)
        bench_emulate(records, 512, compare_scalar=True)
        bench_emulate(records, 1024, compare_scalar=False)
        bench_spgemm(records, 1024, 0.05, compare_reference=True)
        # The Figure-14 sparse-crossover point: 4096² at 99 % sparsity.
        bench_spgemm(records, 4096, 0.01, compare_reference=False)

    by_key = {
        (r["case"], r["n"], r.get("density"), r["mode"]): r["seconds"]
        for r in records
    }
    speedups = {}
    for (case, n, density, mode), seconds in by_key.items():
        if mode != "scalar":
            continue
        fast = by_key.get((case, n, density, "vectorized" if case == "spgemm" else "batched"))
        if fast:
            label = f"{case}_{n}" + (f"_d{density:.2f}" if density else "")
            speedups[label] = round(seconds / fast, 2)

    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "full" if args.full else "smoke",
        "records": records,
        "speedups_vs_scalar": speedups,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
