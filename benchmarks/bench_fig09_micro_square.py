"""Figure 9: microbenchmark speedups on square inputs.

Benchmarks the real vectorised SIMD² kernels per opcode (at 256³ — the
same code path as the paper-size sweep) and regenerates the Figure 9
speedup series through the calibrated timing model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fig9_micro_square_rows, render_table
from repro.isa import MmoOpcode
from repro.runtime import mmo_tiled

N = 256


def _inputs(opcode: MmoOpcode):
    rng = np.random.default_rng(int(opcode))
    ring = opcode.semiring
    if ring.is_boolean():
        return rng.random((N, N)) < 0.1, rng.random((N, N)) < 0.1
    return (
        rng.integers(-8, 9, (N, N)).astype(np.float64),
        rng.integers(-8, 9, (N, N)).astype(np.float64),
    )


@pytest.mark.parametrize("opcode", list(MmoOpcode), ids=lambda op: op.mnemonic)
def test_mmo_kernel(benchmark, opcode):
    a, b = _inputs(opcode)
    result, stats = benchmark(mmo_tiled, opcode, a, b)
    assert result.shape == (N, N)
    assert stats.mmo_instructions == (N // 16) ** 3


def test_fig9_speedup_series(benchmark, save_table):
    rows = benchmark(fig9_micro_square_rows)
    save_table("fig09_micro_square", render_table(rows, title="Figure 9 (modelled speedups)"))
    final = rows[-1]
    # Paper: gmean saturates around 10x, peak ops reach ~15.8x.
    assert 9.5 < final["gmean"] < 11.0
    assert 15.0 < final["minmax"] < 17.5
    assert 2.8 < final["mma"] < 3.5
