"""Resilience health check: fault-recovery proof plus checksum overhead.

Standalone script (not a pytest benchmark), wired to ``make
check-resilience`` and CI.  Three gates:

1. **Injected-fault recovery (end to end)** — a seeded
   :class:`~repro.resilience.FaultPlan` corrupts output tiles *and* kills
   a device under a checked multi-device min-plus closure.  Every
   injected corruption must be detected (zero false negatives), the run
   must recover via retry + repartition, and the final matrix must be
   **bit-identical** to the fault-free run, with the detection/recovery
   events visible on the trace.
2. **Zero false positives** — the identical closure with no fault plan
   must finish with no detections and no recovery events.
3. **Checksum overhead** — the ABFT-checked closure must stay under
   ``1.3x`` the unchecked closure on a 512² min-plus closure (vectorized
   backend).  The checksums are O(n²) folds around an O(n³) launch; this
   gate keeps them that way.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py \
        --out benchmarks/results/resilience.json        # artifact
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.hw import Simd2Device
from repro.resilience import FaultPlan, FaultSpec, resilient_closure
from repro.runtime import Trace, closure, use_context

E2E_N = 64
E2E_DEVICES = 3
E2E_MAX_ITERATIONS = 30

OVERHEAD_N = 512
OVERHEAD_ITERATIONS = 4
OVERHEAD_REPEATS = 3
MAX_OVERHEAD_RATIO = 1.3


def _graph(n: int, seed: int) -> np.ndarray:
    """A random sparse digraph, min-plus encoded (inf = no edge)."""
    rng = np.random.default_rng(seed)
    adj = np.full((n, n), np.inf, dtype=np.float32)
    edges = rng.integers(0, n, (4 * n, 2))
    adj[edges[:, 0], edges[:, 1]] = rng.integers(1, 9, 4 * n).astype(np.float32)
    np.fill_diagonal(adj, 0.0)
    return adj


def fault_recovery(records: list[dict]) -> None:
    """Gates 1+2: seeded faults detected and recovered bit-for-bit."""
    adj = _graph(E2E_N, seed=7)
    reference = closure(
        "min-plus", adj, backend="emulate", max_iterations=E2E_MAX_ITERATIONS
    )

    # -- clean checked run: zero false positives ------------------------
    clean_trace = Trace()
    with use_context(backend="emulate", trace=clean_trace) as ctx:
        clean = resilient_closure(
            "min-plus", adj,
            devices=[Simd2Device() for _ in range(E2E_DEVICES)],
            context=ctx, max_iterations=E2E_MAX_ITERATIONS,
        )
    clean_summary = clean_trace.summary()
    if not np.array_equal(clean.matrix, reference.matrix):
        raise SystemExit("clean checked closure diverged from the reference")
    if clean_summary.resilience_events != 0:
        raise SystemExit(
            f"false positives: clean run produced "
            f"{dict(clean_summary.by_event)}"
        )
    print(f"clean   {E2E_N}² x{E2E_DEVICES}dev  parity ok, "
          f"0 resilience events ({clean.iterations} iterations)")

    # -- faulty checked run: corrupt two launches, kill one device ------
    plan = FaultPlan(
        seed=11,
        corrupt={
            1: FaultSpec(kind="nan"),                       # point poison
            3: FaultSpec(kind="stuck", value=-1e6),         # stuck tile
        },
        fail_devices=(0,),
    )
    trace = Trace()
    with use_context(backend="emulate", fault_plan=plan, trace=trace) as ctx:
        recovered = resilient_closure(
            "min-plus", adj,
            devices=[Simd2Device() for _ in range(E2E_DEVICES)],
            context=ctx, max_iterations=E2E_MAX_ITERATIONS,
        )
    summary = trace.summary()

    if plan.injected_corruptions < 1 or plan.injected_device_failures < 1:
        raise SystemExit(
            f"fault plan under-delivered: {plan.injected_corruptions} "
            f"corruptions, {plan.injected_device_failures} device kills"
        )
    if summary.corruptions_detected != plan.injected_corruptions:
        raise SystemExit(
            f"false negatives: {plan.injected_corruptions} corruptions "
            f"injected, {summary.corruptions_detected} detected"
        )
    if summary.device_failures != 1 or summary.repartitions != 1:
        raise SystemExit(
            f"expected 1 device failure + 1 repartition, got "
            f"{dict(summary.by_event)}"
        )
    if summary.retries < plan.injected_corruptions:
        raise SystemExit(
            f"expected >= {plan.injected_corruptions} retries, got "
            f"{summary.retries}"
        )
    if not np.array_equal(recovered.matrix, reference.matrix):
        raise SystemExit("recovered closure is not bit-identical to fault-free")
    if recovered.blacklist != frozenset({0}):
        raise SystemExit(f"expected blacklist {{0}}, got {recovered.blacklist}")
    print(f"faulty  {E2E_N}² x{E2E_DEVICES}dev  recovered bit-identical: "
          f"{dict(summary.by_event)}")
    records.append(
        {
            "case": "fault_recovery", "n": E2E_N, "devices": E2E_DEVICES,
            "injected_corruptions": plan.injected_corruptions,
            "injected_device_failures": plan.injected_device_failures,
            "detected_corruptions": summary.corruptions_detected,
            "retries": summary.retries,
            "device_failures": summary.device_failures,
            "repartitions": summary.repartitions,
            "clean_run_events": clean_summary.resilience_events,
            "bit_identical": True,
            "blacklist": sorted(recovered.blacklist),
            "iterations": recovered.iterations,
        }
    )


def checksum_overhead(records: list[dict]) -> None:
    """Gate 3: ABFT-checked closure within 1.3x of unchecked, 512²."""
    adj = _graph(OVERHEAD_N, seed=3)

    def unchecked() -> None:
        closure(
            "min-plus", adj, backend="vectorized",
            max_iterations=OVERHEAD_ITERATIONS, convergence_check=False,
        )

    def checked() -> None:
        resilient_closure(
            "min-plus", adj, backend="vectorized",
            max_iterations=OVERHEAD_ITERATIONS, convergence_check=False,
            checked=True, watchdog=True,
        )

    unchecked()  # warm lazy imports before timing
    checked()
    best_plain = best_checked = float("inf")
    for _ in range(OVERHEAD_REPEATS):
        t0 = time.perf_counter()
        unchecked()
        best_plain = min(best_plain, time.perf_counter() - t0)
        t0 = time.perf_counter()
        checked()
        best_checked = min(best_checked, time.perf_counter() - t0)
    ratio = best_checked / best_plain
    records.append(
        {
            "case": "checksum_overhead", "n": OVERHEAD_N,
            "iterations": OVERHEAD_ITERATIONS,
            "unchecked_seconds": best_plain,
            "checked_seconds": best_checked,
            "ratio": round(ratio, 6), "max_ratio": MAX_OVERHEAD_RATIO,
        }
    )
    print(f"overhead {OVERHEAD_N}² x{OVERHEAD_ITERATIONS}iter  "
          f"unchecked {best_plain * 1e3:7.1f}ms  "
          f"checked {best_checked * 1e3:7.1f}ms  ratio {ratio:.3f}")
    if ratio > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"checksum overhead {ratio:.3f}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x budget"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    records: list[dict] = []
    fault_recovery(records)
    checksum_overhead(records)

    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "records": records,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
