"""Shared helpers for the benchmark suite.

Each ``bench_*`` file does two things:

1. *measures* the real implementation underlying its table/figure with
   pytest-benchmark (at sizes tractable for a Python emulation), and
2. *regenerates* the paper's rows/series through the model harness,
   printing the table and saving it under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    """Print an experiment table and persist it to benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
