"""Figure 10: microbenchmark speedups on non-square inputs.

Benchmarks real rectangular kernels (tall/wide/reduction-heavy panels)
and regenerates the Figure 10 speedup series through the timing model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fig10_micro_nonsquare_rows, render_table
from repro.runtime import mmo_tiled

SHAPES = [(512, 64, 64), (64, 512, 64), (64, 64, 512)]


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: "x".join(map(str, s)))
def test_nonsquare_kernel(benchmark, shape):
    m, n, k = shape
    rng = np.random.default_rng(m + n + k)
    a = rng.integers(-8, 9, (m, k)).astype(np.float64)
    b = rng.integers(-8, 9, (k, n)).astype(np.float64)
    result, stats = benchmark(mmo_tiled, "min-plus", a, b)
    assert result.shape == (m, n)
    assert stats.tiles_k == k // 16


def test_fig10_speedup_series(benchmark, save_table):
    rows = benchmark(fig10_micro_nonsquare_rows)
    save_table(
        "fig10_micro_nonsquare", render_table(rows, title="Figure 10 (modelled speedups)")
    )
    # Non-square panels still favour SIMD² everywhere, though thin inner
    # dimensions reduce utilisation.
    for row in rows:
        assert row["minplus"] > 3.0
        assert row["gmean"] > 3.0
