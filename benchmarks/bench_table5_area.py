"""Table 5: area/power of SIMD² units — regenerates all three sub-tables.

Measures the composition model itself and emits the model-vs-paper table.
"""

from __future__ import annotations

from repro.bench import render_table, table5_area_rows
from repro.hwmodel import (
    ALL_SIMD2_EXTENSIONS,
    combined_unit_area,
    simd2_unit_area,
    standalone_total_area,
)


def test_table5_rows(benchmark, save_table):
    rows = benchmark(table5_area_rows)
    save_table(
        "table5_area", render_table(rows, title="Table 5 (model vs paper, MMA=1)")
    )
    # Headline claims of the paper's Section 6.1:
    by_config = {row["config"]: row["model_area"] for row in rows}
    assert abs(by_config["MMA + all SIMD2 insts"] - 1.69) < 0.05
    assert abs(by_config["standalone total (8 PEs)"] - 2.96) < 0.10


def test_full_unit_composition(benchmark):
    area = benchmark(simd2_unit_area, 16)
    assert 1.6 < area < 1.8


def test_precision_sweep(benchmark):
    def sweep():
        return [simd2_unit_area(bits) for bits in (8, 16, 32, 64)]

    areas = benchmark(sweep)
    assert areas == sorted(areas)


def test_incremental_composition(benchmark):
    def all_pairs():
        return [
            combined_unit_area([a, b])
            for a in ALL_SIMD2_EXTENSIONS
            for b in ALL_SIMD2_EXTENSIONS
        ]

    areas = benchmark(all_pairs)
    assert max(areas) <= simd2_unit_area(16)


def test_standalone_farm(benchmark):
    total = benchmark(standalone_total_area)
    assert total > simd2_unit_area(16)
