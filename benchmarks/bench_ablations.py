"""Ablations of the design choices DESIGN.md calls out.

Beyond the paper's own figures, these benches quantify:

- combined SIMD² unit vs per-op accelerators (paper §3.1: the dedicated-
  accelerator design costs ">4×" the combined design's overhead),
- the cost/benefit of the convergence check (how much of each closure
  iteration it consumes, and how it compares to worst-case iteration),
- architecture sensitivity (paper §6.3: matrix algorithms scale with the
  underlying GPU generation without code changes),
- dense vs sparse closure work on sparse graphs (the §6.5 GAMMA argument).
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table
from repro.datasets import GraphSpec, distance_graph
from repro.hwmodel import mma_unit_area, simd2_unit_area, standalone_total_area
from repro.isa import MmoOpcode
from repro.sparse import CsrMatrix, sparse_closure
from repro.timing import (
    RTX2080TI,
    RTX3080,
    app_times,
    cuda_mmo_time,
    elementwise_pass_time,
    simd2_mmo_time,
)
from repro.runtime import closure


def test_combined_vs_standalone_overhead(benchmark, save_table):
    def ratios():
        combined_overhead = simd2_unit_area(16) - mma_unit_area(16)
        standalone_overhead = standalone_total_area()
        return combined_overhead, standalone_overhead

    combined, standalone = benchmark(ratios)
    rows = [
        {"design": "combined SIMD2 unit", "extra_area": combined},
        {"design": "8 standalone accelerators", "extra_area": standalone},
        {"design": "ratio", "extra_area": standalone / combined},
    ]
    save_table("ablation_unit_design", render_table(rows, title="Unit design ablation"))
    # Paper: the dedicated design is > 4x the combined design's overhead.
    assert standalone / combined > 4.0


def test_convergence_check_cost_share(benchmark, save_table):
    def shares():
        rows = []
        for n in (1024, 4096, 16384):
            mmo = simd2_mmo_time(MmoOpcode.MINPLUS, n, n, n)
            check = elementwise_pass_time(float(n) * n, 8.0)
            rows.append(
                {
                    "size": n,
                    "mmo_ms": mmo * 1e3,
                    "check_ms": check * 1e3,
                    "check_share": check / (mmo + check),
                }
            )
        return rows

    rows = benchmark(shares)
    save_table(
        "ablation_convergence_cost",
        render_table(rows, title="Convergence-check cost per closure iteration"),
    )
    # The check is bandwidth-bound; its share must shrink as n grows
    # (O(n²) traffic vs O(n³) compute).
    shares_list = [row["check_share"] for row in rows]
    assert shares_list == sorted(shares_list, reverse=True)
    assert shares_list[-1] < 0.05


def test_convergence_check_pays_off_on_real_closures(benchmark):
    adjacency = distance_graph(GraphSpec(64, 0.15, seed=4))

    def run_both():
        with_check = closure("min-plus", adjacency, convergence_check=True)
        without = closure("min-plus", adjacency, convergence_check=False)
        return with_check, without

    with_check, without = benchmark(run_both)
    # Convergence checking stops after the fixpoint; the worst-case run
    # executes ⌈log₂ n⌉ iterations regardless.
    assert with_check.iterations <= without.iterations + 1
    np.testing.assert_array_equal(with_check.matrix, without.matrix)


def test_architecture_sensitivity(benchmark, save_table):
    def sweep():
        rows = []
        for app in ("APSP", "MCP", "GTC", "KNN"):
            old = app_times(app, 4096, spec=RTX2080TI)
            new = app_times(app, 4096, spec=RTX3080)
            rows.append(
                {
                    "app": app,
                    "units_gain": old.simd2_units_s / new.simd2_units_s,
                    "cuda_backend_gain": old.simd2_cuda_s / new.simd2_cuda_s,
                }
            )
        return rows

    rows = benchmark(sweep)
    save_table(
        "ablation_architecture",
        render_table(rows, title="Architecture sensitivity (no code changes)"),
    )
    # Paper §6.3: the matrix-based programs inherit architectural
    # improvements without re-optimisation — most visibly on the CUDA-core
    # backend, where the 3080 doubles the cores of the previous generation.
    assert all(row["cuda_backend_gain"] > 1.8 for row in rows)
    assert all(row["units_gain"] > 1.05 for row in rows)


def test_fma_fusion_ablation(benchmark, save_table):
    """What the baseline loses when ⊗⊕ cannot fuse: the per-op CUDA cost."""

    def sweep():
        rows = []
        for opcode in MmoOpcode:
            rows.append(
                {
                    "opcode": opcode.mnemonic,
                    "cuda_ms_4096": cuda_mmo_time(opcode, 4096, 4096, 4096) * 1e3,
                    "simd2_ms_4096": simd2_mmo_time(opcode, 4096, 4096, 4096) * 1e3,
                }
            )
        return rows

    rows = benchmark(sweep)
    save_table("ablation_fma_fusion", render_table(rows, title="FMA-fusion ablation"))
    by_op = {row["opcode"]: row for row in rows}
    # All SIMD2-unit times are equal (uniform instruction latency — the
    # paper provisions every mmo at MXU throughput); CUDA times differ.
    unit_times = {round(row["simd2_ms_4096"], 9) for row in rows}
    assert len(unit_times) == 1
    assert by_op["minmax"]["cuda_ms_4096"] > by_op["minplus"]["cuda_ms_4096"]
    assert by_op["minplus"]["cuda_ms_4096"] > by_op["mma"]["cuda_ms_4096"]


def test_dense_vs_sparse_closure_work(benchmark, save_table):
    n = 48
    adjacency = distance_graph(GraphSpec(n, 0.06, seed=11))
    csr = CsrMatrix.from_dense(adjacency, implicit=np.inf)

    result = benchmark(sparse_closure, "min-plus", csr)
    dense_products = result.iterations * n**3
    rows = [
        {
            "graph": f"n={n}, nnz={csr.nnz}",
            "sparse_products": result.total_products,
            "dense_products": dense_products,
            "work_saved": 1 - result.total_products / dense_products,
        }
    ]
    save_table(
        "ablation_sparse_closure",
        render_table(rows, title="Dense vs sparse (GAMMA-style) closure work"),
    )
    assert result.total_products < dense_products


def test_design_space_pareto(benchmark, save_table):
    from repro.timing import design_space

    points = benchmark(design_space)
    rows = [
        {
            "design": p.design,
            "extra_area_units": p.extra_area_units,
            "extra_die_mm2": p.extra_die_mm2,
            "geomean_speedup": p.geomean_speedup,
            "speedup_per_mm2": p.speedup_per_mm2,
        }
        for p in points
    ]
    save_table(
        "ablation_design_space",
        render_table(rows, title="Unit design space (Medium inputs)"),
    )
    by_design = {row["design"]: row for row in rows}
    # The paper's design choice: SIMD2 dominates the accelerator farm.
    assert (
        by_design["simd2"]["speedup_per_mm2"]
        > by_design["accelerator-farm"]["speedup_per_mm2"] * 4
    )


def test_energy_per_application(benchmark, save_table):
    from repro.hwmodel import app_energy
    from repro.timing import APP_SIZES, APPS, app_times

    def sweep():
        rows = []
        for app in APPS:
            energy = app_energy(app_times(app, APP_SIZES[app][1]))
            rows.append(
                {
                    "app": app,
                    "baseline_J": energy.baseline_j,
                    "simd2_units_J": energy.simd2_units_j,
                    "energy_gain": energy.energy_gain,
                }
            )
        return rows

    rows = benchmark(sweep)
    save_table(
        "ablation_energy", render_table(rows, title="Derived energy per application")
    )
    gains = [row["energy_gain"] for row in rows]
    assert sum(g > 1 for g in gains) >= 7
