"""Figure 12: algorithmic ablations (convergence checks, Bellman-Ford).

Benchmarks the real closure under each policy on a validation-scale graph
and regenerates the Figure 12 speedup table from the timing model.
"""

from __future__ import annotations

import pytest

from repro.bench import fig12_ablation_rows, render_table
from repro.datasets import GraphSpec, distance_graph
from repro.runtime import closure

SPEC = GraphSpec(num_vertices=96, edge_probability=0.08, seed=3)

_POLICIES = {
    "leyzorek-conv": ("leyzorek", True),
    "leyzorek-noconv": ("leyzorek", False),
    "bellman-ford-conv": ("bellman-ford", True),
    "bellman-ford-noconv": ("bellman-ford", False),
}


@pytest.mark.parametrize("policy", sorted(_POLICIES), ids=str)
def test_closure_policy(benchmark, policy):
    method, check = _POLICIES[policy]
    adjacency = distance_graph(SPEC)
    result = benchmark(
        closure, "min-plus", adjacency, method=method, convergence_check=check
    )
    assert result.matrix.shape == adjacency.shape


def test_policies_reach_same_fixpoint(benchmark):
    import numpy as np

    adjacency = distance_graph(SPEC)

    def run_all():
        return [
            closure("min-plus", adjacency, method=m, convergence_check=c).matrix
            for m, c in _POLICIES.values()
        ]

    results = benchmark(run_all)
    for other in results[1:]:
        np.testing.assert_array_equal(results[0], other)


def test_fig12_speedup_table(benchmark, save_table):
    rows = benchmark(fig12_ablation_rows)
    save_table("fig12_ablation", render_table(rows, title="Figure 12 (modelled)"))
    # Paper: Leyzorek w/o convergence still beats baselines by 1.11–10.91x
    # on most apps; Bellman-Ford sinks MinRP below 1 everywhere.
    noconv = [row["leyzorek_noconv"] for row in rows]
    assert 1.0 < max(noconv) < 12.0
    minrp_bf = [row["bellman_ford"] for row in rows if row["app"] == "MINRP"]
    assert all(value < 1.0 for value in minrp_bf)
