"""Backend-registry health check: parity smoke plus dispatch overhead.

Standalone script (not a pytest benchmark), wired to ``make check-backends``
and CI.  Four gates:

1. **Parity smoke** — every *registered* backend (including ones added
   after this script was written) agrees with the vectorized reference on
   a representative plus-based and idempotent ring.
2. **Dispatch overhead** — the full ``mmo_tiled`` path (context
   resolution, registry lookup, plan-cache lookup, trace hook) must stay
   within 5 % of calling the backend directly on a 512² mmo.  The
   registry refactor is supposed to be free; this keeps it that way.
3. **Hooks overhead** — the lifecycle hook pipeline on a *default*
   context (validation only: no trace, no faults) must dispatch
   launchless, and its per-call cost over a bare backend ``execute``
   must stay within 5 % of the 512² kernel it brackets.  The pipeline
   refactor replaced the hand-threaded seams; this keeps it free.
4. **Closure relaunch** — relaunching one deep-k shape many times (the
   shape of a closure loop) with the plan cache enabled must beat the
   same loop with memoization disabled (``PlanCache(maxsize=0)``, the
   compile-every-launch seed behaviour): ratio < 1.0.  Plan-cache
   hit/miss counts for both loops land in the artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_dispatch.py
    PYTHONPATH=src python benchmarks/bench_dispatch.py \
        --out benchmarks/results/dispatch.json          # artifact
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import get_backend, list_backends
from repro.backends.tiling import resolve_opcode
from repro.compile import PlanCache
from repro.core import SEMIRINGS
from repro.runtime import ExecutionContext, mmo_tiled

DISPATCH_N = 512
DISPATCH_REPEATS = 5
TINY_REPEATS = 300
MAX_OVERHEAD_RATIO = 1.05
MAX_HOOKS_OVERHEAD_RATIO = 1.05

# Closure-relaunch experiment: a small output with a deep reduction, so the
# per-launch lowering (program length grows with tiles_k) is a visible
# fraction of the launch — the shape class where compile-once-replay pays.
RELAUNCH_M = RELAUNCH_N = 16
RELAUNCH_K = 4096
RELAUNCH_ITERS = 20
RELAUNCH_REPEATS = 5
MAX_RELAUNCH_RATIO = 1.0


def _operands(ring, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        return rng.random((m, k)) < 0.4, rng.random((k, n)) < 0.4
    # [0.5, 8.5): continuous (fold order matters) and never colliding
    # with any ring's ⊕ identity, so the sparse backend stays non-trivial.
    return rng.uniform(0.5, 8.5, (m, k)), rng.uniform(0.5, 8.5, (k, n))


def parity_smoke(records: list[dict]) -> None:
    """Every registered backend vs the vectorized reference, two rings."""
    for name in ("plus-mul", "min-plus"):
        ring = SEMIRINGS[name]
        a, b = _operands(ring, 48, 64, 32, seed=3)
        expected, ref_stats = mmo_tiled(name, a, b, backend="vectorized")
        for backend in list_backends():
            got, stats = mmo_tiled(name, a, b, backend=backend)
            if ring.oplus is np.add:
                # Backends fold the k-reduction in different orders
                # (spGEMM left-fold vs dense pairwise); fp32 reassociation
                # error grows with k, so match to rounding, not bits.
                ok = np.allclose(
                    got.astype(np.float64), expected.astype(np.float64),
                    rtol=1e-4,
                )
            else:
                ok = np.array_equal(got, expected)
            if not ok:
                raise SystemExit(
                    f"parity: backend {backend!r} disagrees with the "
                    f"vectorized reference on ring {name!r}"
                )
            if stats.mmo_instructions != ref_stats.mmo_instructions:
                raise SystemExit(
                    f"parity: backend {backend!r} reports "
                    f"{stats.mmo_instructions} mmos on {name!r}, reference "
                    f"reports {ref_stats.mmo_instructions}"
                )
            records.append(
                {"case": "parity", "ring": name, "backend": backend, "ok": True}
            )
            print(f"parity  {name:10s} {backend:12s} ok "
                  f"(mmos={stats.mmo_instructions})")


def _interleaved_mins(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """min-of-repeats for two fns, alternating so drift hits both alike."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def dispatch_overhead(records: list[dict]) -> None:
    """Context-path cost over a direct backend call on a 512² mmo.

    Dispatch (context resolution, registry lookup, trace hook) is a
    per-call cost of a few µs, independent of operand size; a 512² mmo
    kernel runs for hundreds of ms with several percent of machine
    noise, so timing the two full paths head-to-head at 512² measures
    the noise, not the dispatch.  Instead: isolate the per-call overhead
    on a 16×16 mmo (~30 µs, min-of-many is stable to sub-µs), then hold
    it against the measured 512² kernel time — the gate the refactor
    must pass is that the *measured* dispatch cost is within 5 % of the
    *measured* kernel it decorates.  Full-path 512² timings are still
    recorded for reference.
    """
    ring = SEMIRINGS["plus-mul"]
    impl = get_backend("vectorized")
    opcode = resolve_opcode("plus-mul")
    context = ExecutionContext()

    # (1) Per-call dispatch overhead, measured where it is measurable.
    ta, tb = _operands(ring, 16, 16, 16, seed=5)
    impl.run_mmo(opcode, ta, tb, None, context=context)  # warm lazy imports
    mmo_tiled("plus-mul", ta, tb)
    tiny_direct, tiny_context = _interleaved_mins(
        lambda: impl.run_mmo(opcode, ta, tb, None, context=context),
        lambda: mmo_tiled("plus-mul", ta, tb),
        TINY_REPEATS,
    )
    overhead = max(0.0, tiny_context - tiny_direct)

    # (2) The kernel the overhead budget is expressed against.
    n = DISPATCH_N
    a, b = _operands(ring, n, n, n, seed=17)
    direct, dispatched = _interleaved_mins(
        lambda: impl.run_mmo(opcode, a, b, None, context=context),
        lambda: mmo_tiled("plus-mul", a, b),
        DISPATCH_REPEATS,
    )
    ratio = (direct + overhead) / direct
    records.append(
        {
            "case": "dispatch_overhead", "n": n,
            "tiny_direct_seconds": tiny_direct,
            "tiny_context_seconds": tiny_context,
            "overhead_seconds_per_call": overhead,
            "direct_seconds": direct, "context_seconds": dispatched,
            "ratio": round(ratio, 6), "max_ratio": MAX_OVERHEAD_RATIO,
        }
    )
    print(f"dispatch per-call overhead {overhead * 1e6:6.1f}us  "
          f"(tiny {tiny_direct * 1e6:.1f}us -> {tiny_context * 1e6:.1f}us)")
    print(f"dispatch {n}²  direct {direct * 1e3:7.2f}ms  "
          f"context {dispatched * 1e3:7.2f}ms  "
          f"overhead ratio {ratio:.6f}")
    if ratio > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"dispatch overhead {ratio:.3f}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x budget"
        )


def hooks_overhead(records: list[dict]) -> None:
    """Hook-pipeline cost on a default context vs the kernel it brackets.

    The lifecycle pipeline replaced the hand-threaded trace/fault/
    validation seams with ``begin_launch``/``finish_launch`` around every
    backend call.  On a default context (validation hook only) it must be
    free twice over: structurally — ``begin_launch`` takes the
    allocation-free path and returns no ``Launch`` carrier — and in time,
    measured like :func:`dispatch_overhead`: isolate the per-call delta
    of the pipelined ``execute_compiled`` path over a bare backend
    ``execute`` on a 16² mmo, then hold it against the 512² kernel of
    the relaunch loop.
    """
    from repro.runtime import execute_compiled
    from repro.runtime.kernels import compile_in_context

    ring = SEMIRINGS["plus-mul"]
    impl = get_backend("vectorized")
    opcode = resolve_opcode("plus-mul")
    context = ExecutionContext(plan_cache=PlanCache())

    # Structural gate: the default pipeline dispatches launchless.
    probe_a, probe_b = _operands(ring, 16, 16, 16, seed=5)
    launchless = (
        context.pipeline.begin_launch(
            context, "bench", opcode, probe_a, probe_b, None
        )
        is None
    )
    if not launchless:
        raise SystemExit(
            "hooks: default pipeline allocated a Launch carrier — the "
            "no-observer hot path must be allocation-free"
        )

    # (1) Per-call pipeline overhead, measured where it is measurable.
    tiny, _ = compile_in_context(
        context, impl, opcode, 16, 16, 16, has_accumulator=False
    )
    impl.execute(tiny, probe_a, probe_b, None, context=context)  # warm
    execute_compiled(tiny, probe_a, probe_b, context=context)
    tiny_direct, tiny_piped = _interleaved_mins(
        lambda: impl.execute(tiny, probe_a, probe_b, None, context=context),
        lambda: execute_compiled(tiny, probe_a, probe_b, context=context),
        TINY_REPEATS,
    )
    overhead = max(0.0, tiny_piped - tiny_direct)

    # (2) The 512² relaunch kernel the overhead budget is expressed against.
    n = DISPATCH_N
    a, b = _operands(ring, n, n, n, seed=23)
    compiled, _ = compile_in_context(
        context, impl, opcode, n, n, n, has_accumulator=False
    )
    direct, piped = _interleaved_mins(
        lambda: impl.execute(compiled, a, b, None, context=context),
        lambda: execute_compiled(compiled, a, b, context=context),
        DISPATCH_REPEATS,
    )
    ratio = (direct + overhead) / direct
    records.append(
        {
            "case": "hooks_overhead", "n": n,
            "launchless": launchless,
            "tiny_direct_seconds": tiny_direct,
            "tiny_pipeline_seconds": tiny_piped,
            "overhead_seconds_per_call": overhead,
            "direct_seconds": direct, "pipeline_seconds": piped,
            "ratio": round(ratio, 6),
            "max_ratio": MAX_HOOKS_OVERHEAD_RATIO,
        }
    )
    print(f"hooks   per-call overhead {overhead * 1e6:6.1f}us  "
          f"(tiny {tiny_direct * 1e6:.1f}us -> {tiny_piped * 1e6:.1f}us, "
          f"launchless={launchless})")
    print(f"hooks   {n}²  direct {direct * 1e3:7.2f}ms  "
          f"pipeline {piped * 1e3:7.2f}ms  overhead ratio {ratio:.6f}")
    if ratio > MAX_HOOKS_OVERHEAD_RATIO:
        raise SystemExit(
            f"hooks overhead {ratio:.3f}x exceeds the "
            f"{MAX_HOOKS_OVERHEAD_RATIO}x budget"
        )


def closure_relaunch(records: list[dict]) -> None:
    """Cached relaunch of one shape vs recompiling on every launch.

    Runs the same deep-k mmo ``RELAUNCH_ITERS`` times — the launch pattern
    of a closure loop — under two private plan caches: a real one (one
    miss, then hits) and ``PlanCache(maxsize=0)`` (memoization disabled,
    every launch pays the lowering, i.e. the pre-split behaviour).  The
    cached loop must win outright.
    """
    ring = SEMIRINGS["min-plus"]
    a, b = _operands(ring, RELAUNCH_M, RELAUNCH_K, RELAUNCH_N, seed=11)

    def run_loop(maxsize: int) -> PlanCache:
        cache = PlanCache(maxsize=maxsize)
        context = ExecutionContext(plan_cache=cache)
        for _ in range(RELAUNCH_ITERS):
            mmo_tiled("min-plus", a, b, context=context)
        return cache

    # Warm lazy imports and NumPy dispatch before timing; each timed call
    # builds a fresh cache, so the cached loop's single compile is *inside*
    # its measurement.
    cached_stats = run_loop(128).stats()
    uncached_stats = run_loop(0).stats()
    cached, uncached = _interleaved_mins(
        lambda: run_loop(128), lambda: run_loop(0), RELAUNCH_REPEATS
    )
    ratio = cached / uncached
    records.append(
        {
            "case": "closure_relaunch",
            "m": RELAUNCH_M, "n": RELAUNCH_N, "k": RELAUNCH_K,
            "iterations": RELAUNCH_ITERS,
            "cached_seconds": cached,
            "uncached_seconds": uncached,
            "ratio": round(ratio, 6), "max_ratio": MAX_RELAUNCH_RATIO,
            "cached_cache": {
                "hits": cached_stats.hits, "misses": cached_stats.misses,
                "hit_rate": round(cached_stats.hit_rate, 6),
            },
            "uncached_cache": {
                "hits": uncached_stats.hits, "misses": uncached_stats.misses,
                "hit_rate": round(uncached_stats.hit_rate, 6),
            },
        }
    )
    print(f"relaunch {RELAUNCH_M}x{RELAUNCH_K}x{RELAUNCH_N} "
          f"x{RELAUNCH_ITERS}  cached {cached * 1e3:6.1f}ms "
          f"(hit rate {cached_stats.hit_rate:.2f})  "
          f"uncached {uncached * 1e3:6.1f}ms  ratio {ratio:.3f}")
    if cached_stats.misses != 1 or cached_stats.hits != RELAUNCH_ITERS - 1:
        raise SystemExit(
            f"relaunch: expected 1 miss + {RELAUNCH_ITERS - 1} hits on the "
            f"cached loop, got {cached_stats}"
        )
    if ratio >= MAX_RELAUNCH_RATIO:
        raise SystemExit(
            f"relaunch: cached loop at {ratio:.3f}x of uncached — the plan "
            f"cache must beat recompiling every launch "
            f"(< {MAX_RELAUNCH_RATIO}x)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    records: list[dict] = []
    parity_smoke(records)
    dispatch_overhead(records)
    hooks_overhead(records)
    closure_relaunch(records)

    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends": list(list_backends()),
        "records": records,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
