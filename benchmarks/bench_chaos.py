"""Chaos soak: the full SLO stack under seeded fault schedules.

Standalone script (not a pytest benchmark), wired to ``make check-chaos``
and CI.  It drives the whole execution stack — budgets, deadlines,
backoff, cancellation, circuit breakers, brownout closures, threaded
scheduling — under randomized-but-seeded fault schedules and tight
deadlines, and holds three gates:

1. **Typed termination** — every one of the ≥50 soak runs must end in a
   bit-correct result or a *typed* resilience error
   (:class:`DeadlineExceeded`, :class:`BudgetExhausted`,
   :class:`OperationCancelled`, :class:`ResilienceExhausted`, an
   injected fault, or a flagged brownout).  Any other exception — or a
   success whose bytes differ from the reference — fails the gate:
   no hangs, no silent corruption.
2. **Deterministic replay** — every seed is run twice; the outcome hash
   (result bytes, error type and message, breaker/budget snapshots)
   must be byte-identical.  All time flows through a
   :class:`VirtualClock`, so even backoff schedules replay exactly.
3. **Breaker effectiveness** — a hard-failing backend must stop being
   dispatched once its failure threshold trips (zero launches while
   open), and a half-open probe after the cooldown must restore it.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --out benchmarks/results/chaos.json             # artifact
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.backends import list_backends
from repro.core import SEMIRINGS, mmo
from repro.hooks.pipeline import Hook
from repro.resilience import (
    BreakerBoard,
    BudgetExhausted,
    CancellationToken,
    DeadlineExceeded,
    ExecutionBudget,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    OperationCancelled,
    ResilienceExhausted,
    RetryPolicy,
    VirtualClock,
    resilient_mmo,
)
from repro.runtime import Trace, use_context
from repro.runtime.batched import batched_mmo
from repro.runtime.closure import closure
from repro.sched import ThreadPoolExecutor

SEEDS = range(60)  # gate floor is 50 seeded runs
SCENARIOS = (
    "threaded_faults",
    "deadline_backoff",
    "recovery",
    "brownout",
    "cancellation",
    "breaker",
)
#: Outcome labels that count as *typed* termination (gate 1).
TYPED_OUTCOMES = frozenset(
    {
        "success",
        "injected_fault",
        "deadline_exceeded",
        "budget_exhausted",
        "cancelled",
        "resilience_exhausted",
        "brownout",
    }
)


def _digest(*parts: str) -> str:
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def _array_hex(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _operands(seed: int, m: int = 24, k: int = 16, n: int = 24):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 9, size=(m, k)).astype(np.float64)
    b = rng.integers(0, 9, size=(k, n)).astype(np.float64)
    return a, b


def _adjacency(seed: int, n: int = 32) -> np.ndarray:
    rng = np.random.default_rng(seed)
    adj = rng.integers(1, 9, size=(n, n)).astype(np.float64)
    adj[rng.random((n, n)) < 0.6] = np.inf
    np.fill_diagonal(adj, 0.0)
    return adj


class CancelAfter(Hook):
    """Cancel the token once ``count`` launches have completed."""

    def __init__(self, token: CancellationToken, count: int, reason: str):
        self.token = token
        self.count = count
        self.reason = reason
        self._lock = threading.Lock()
        self._seen = 0

    def post_execute(self, launch) -> None:
        with self._lock:
            self._seen += 1
            if self._seen >= self.count:
                self.token.cancel(self.reason)


# ----------------------------------------------------------------------
# scenarios — each returns (outcome_label, detail_string)
# ----------------------------------------------------------------------
def threaded_faults(seed: int) -> tuple[str, str]:
    """Threaded batch under an injected drop: typed, serial-identical."""
    rng = np.random.default_rng(seed)
    batch = 4 + seed % 3
    a3 = np.stack([_operands(seed + i)[0] for i in range(batch)])
    b3 = np.stack([_operands(seed + i)[1] for i in range(batch)])
    drop = int(rng.integers(0, batch))
    surfaced = []
    for scheduler in (None, ThreadPoolExecutor(max_workers=2)):
        plan = FaultPlan(seed=seed, drop=(drop,))
        with use_context(
            backend="vectorized",
            fault_plan=plan,
            scheduler=scheduler,
            clock=VirtualClock(),
        ) as ctx:
            try:
                batched_mmo("min-plus", a3, b3, context=ctx)
                surfaced.append("success")
            except InjectedFault as exc:
                surfaced.append(f"{type(exc).__name__}: {exc}")
    if surfaced[0] != surfaced[1]:
        raise AssertionError(
            f"threaded error diverged from serial: {surfaced}"
        )
    return "injected_fault", surfaced[0]


def deadline_backoff(seed: int) -> tuple[str, str]:
    """Persistent drops under a tight deadline: backoff burns the clock."""
    a, b = _operands(seed)
    clock = VirtualClock()
    budget = ExecutionBudget(deadline_s=2.0 + seed % 3)
    policy = RetryPolicy(
        max_retries=8, backoff_base_s=0.5, jitter=0.3, seed=seed
    )
    with use_context(
        backend="vectorized",
        fault_plan=FaultPlan(seed=seed, drop=range(100)),
        clock=clock,
        budget=budget,
    ) as ctx:
        try:
            resilient_mmo(
                "min-plus", a, b, context=ctx, retry=policy,
                fallback=FallbackChain(backends=("vectorized", "emulate")),
            )
        except DeadlineExceeded as exc:
            return "deadline_exceeded", (
                f"{exc} slept={clock.slept_s:.9f} sleeps={clock.sleeps}"
            )
        except ResilienceExhausted as exc:
            return "resilience_exhausted", f"{exc} slept={clock.slept_s:.9f}"
    raise AssertionError("persistent drops cannot succeed")


def recovery(seed: int) -> tuple[str, str]:
    """Transient drop + corruption under a generous deadline: bit-correct."""
    a, b = _operands(seed)
    clock = VirtualClock()
    budget = ExecutionBudget(deadline_s=1000.0, max_retries=10)
    policy = RetryPolicy(
        max_retries=3, backoff_base_s=0.25, jitter=0.5, seed=seed
    )
    plan = FaultPlan(seed=seed, drop=(0,), corrupt={1: FaultSpec(kind="nan")})
    with use_context(
        backend="vectorized", fault_plan=plan, clock=clock, budget=budget
    ) as ctx:
        result, _ = resilient_mmo(
            "min-plus", a, b, context=ctx, retry=policy,
        )
    expected = mmo("min-plus", a, b)
    if not np.array_equal(result, expected):
        raise AssertionError("recovered result diverged from reference")
    return "success", f"{_array_hex(result)} slept={clock.slept_s:.9f}"


def brownout(seed: int) -> tuple[str, str]:
    """Budget-tripped closure degrades to a flagged partial fixpoint."""
    adj = _adjacency(seed)
    launches = 2 + seed % 3
    budget = ExecutionBudget(max_launches=launches)
    trace = Trace()
    with use_context(
        backend="vectorized",
        budget=budget,
        clock=VirtualClock(),
        trace=trace,
    ) as ctx:
        result = closure(
            "min-plus", adj, method="bellman-ford",
            convergence_check=False, context=ctx, on_budget="brownout",
        )
    if result.converged or result.diagnostics is None:
        raise AssertionError("brownout must be flagged, not silent")
    if result.diagnostics.reason != "budget_exhausted":
        raise AssertionError(f"wrong reason {result.diagnostics.reason!r}")
    # The partial fixpoint must equal the budgetless run cut at the same
    # iteration — partial, never corrupt.
    reference = closure(
        "min-plus", adj, method="bellman-ford",
        convergence_check=False, max_iterations=result.iterations,
    )
    if not np.array_equal(result.matrix, reference.matrix):
        raise AssertionError("brownout partial fixpoint diverged")
    if trace.summary().brownouts != 1:
        raise AssertionError("brownout must emit its trace event")
    return "brownout", (
        f"iters={result.iterations} {_array_hex(result.matrix)}"
    )


def cancellation(seed: int) -> tuple[str, str]:
    """Cooperative cancel at a seeded point: exact completed prefix."""
    batch = 6
    a3 = np.stack([_operands(seed + i)[0] for i in range(batch)])
    b3 = np.stack([_operands(seed + i)[1] for i in range(batch)])
    cancel_at = 1 + seed % 5
    token = CancellationToken()
    hook = CancelAfter(token, cancel_at, f"chaos seed {seed}")
    with use_context(
        backend="vectorized",
        cancel=token,
        hooks=(hook,),
        clock=VirtualClock(),
    ) as ctx:
        try:
            batched_mmo("min-plus", a3, b3, context=ctx)
        except OperationCancelled as exc:
            if exc.nodes_completed != tuple(range(cancel_at)):
                raise AssertionError(
                    f"completed {exc.nodes_completed} is not the "
                    f"{cancel_at}-prefix"
                ) from None
            return "cancelled", str(exc)
    raise AssertionError("cancel inside the batch must interrupt the run")


def breaker(seed: int) -> tuple[str, str]:
    """Hard-failing backend trips its breaker; a cooldown probe restores it.

    This is gate 3: while the breaker is open the sick backend gets
    **zero** dispatches, and the half-open probe brings it back.
    """
    a, b = _operands(seed)
    clock = VirtualClock()
    board = BreakerBoard(failure_threshold=3, cooldown_s=10.0, clock=clock)
    trace = Trace()
    plan = FaultPlan(seed=seed, drop=(0, 1, 2))  # vectorized hard-fails
    chain = FallbackChain(backends=("vectorized", "emulate"))
    with use_context(
        backend="vectorized",
        fault_plan=plan,
        breakers=board,
        clock=clock,
        trace=trace,
    ) as ctx:
        # Call 1 burns the three drops on vectorized, trips its breaker,
        # and degrades to the emulator.
        resilient_mmo(
            "min-plus", a, b, context=ctx,
            retry=RetryPolicy(max_retries=2), fallback=chain,
        )
        if board.state_of("vectorized") != "open":
            raise AssertionError("three failures must open the breaker")
        failures_before = trace.summary().backend_failures
        # Calls 2-3: the open breaker must skip vectorized outright.
        for _ in range(2):
            resilient_mmo("min-plus", a, b, context=ctx, fallback=chain)
        if trace.summary().backend_failures != failures_before:
            raise AssertionError(
                "open breaker still dispatched the failing backend"
            )
        if trace.summary().breaker_skips != 2:
            raise AssertionError("each skipped call must emit breaker_open")
        # Cooldown elapses; the drops are spent, so the half-open probe
        # succeeds and its verified result restores the backend.
        clock.advance(10.0)
        result, _ = resilient_mmo(
            "min-plus", a, b, context=ctx, fallback=chain
        )
        if board.state_of("vectorized") != "closed":
            raise AssertionError("successful probe must close the breaker")
    expected = mmo("min-plus", a, b)
    if not np.array_equal(result, expected):
        raise AssertionError("post-recovery result diverged from reference")
    snapshot = json.dumps(board.snapshot(), sort_keys=True)
    return "success", f"{_array_hex(result)} {snapshot}"


_SCENARIO_FNS = {
    "threaded_faults": threaded_faults,
    "deadline_backoff": deadline_backoff,
    "recovery": recovery,
    "brownout": brownout,
    "cancellation": cancellation,
    "breaker": breaker,
}


def run_one(seed: int) -> dict:
    scenario = SCENARIOS[seed % len(SCENARIOS)]
    started = time.perf_counter()
    outcome, detail = _SCENARIO_FNS[scenario](seed)
    wall = time.perf_counter() - started
    return {
        "seed": seed,
        "scenario": scenario,
        "outcome": outcome,
        "hash": _digest(str(seed), scenario, outcome, detail),
        "wall_seconds": round(wall, 6),
    }


def soak(records: list[dict]) -> None:
    failures: list[str] = []
    for seed in SEEDS:
        record = run_one(seed)
        replay = run_one(record["seed"])
        record["replay_identical"] = replay["hash"] == record["hash"]
        records.append(record)
        if record["outcome"] not in TYPED_OUTCOMES:
            failures.append(
                f"seed {seed}: untyped outcome {record['outcome']!r}"
            )
        if not record["replay_identical"]:
            failures.append(f"seed {seed}: replay hash diverged")
    by_outcome: dict[str, int] = {}
    for record in records:
        by_outcome[record["outcome"]] = by_outcome.get(record["outcome"], 0) + 1
    print(f"chaos   {len(records)} seeded runs, outcomes: "
          + ", ".join(f"{k}={v}" for k, v in sorted(by_outcome.items())))
    replay_ok = sum(1 for r in records if r["replay_identical"])
    print(f"chaos   replay: {replay_ok}/{len(records)} byte-identical")
    if len(records) < 50:
        failures.append(f"only {len(records)} runs; the gate floor is 50")
    if failures:
        raise SystemExit("chaos gate failed:\n  " + "\n  ".join(failures))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    records: list[dict] = []
    soak(records)

    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends": list(list_backends()),
        "seeds": len(records),
        "scenarios": list(SCENARIOS),
        "records": records,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
