"""Scheduler health check: graph overhead, bit-identity, threaded speedup.

Standalone script (not a pytest benchmark), wired to ``make check-scheduler``
and CI.  Three gates:

1. **Graph overhead** — lowering a *single-launch* mmo onto a LaunchGraph
   and running it through the serial scheduler (the default path every
   entry point now takes) must stay within 5 % of the pre-graph dispatch
   on a 512² mmo.  The scheduler refactor is supposed to be free for the
   loops it replaced; this keeps it that way.
2. **Bit-identity** — a banded min-plus closure iteration under the
   4-worker :class:`~repro.sched.ThreadPoolExecutor` must be *byte*
   identical to the serial run (dtype included).  Runs unconditionally,
   at a size every machine can afford.
3. **Threaded speedup** — a 2048² min-plus closure iteration split into
   4 row bands must run ≥1.8× faster on 4 workers than serially.
   Skipped (and recorded as skipped in the artifact) on machines with
   fewer than 4 CPUs, where the hardware cannot express the parallelism.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler.py
    PYTHONPATH=src python benchmarks/bench_scheduler.py \
        --out benchmarks/results/scheduler.json         # artifact
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import list_backends
from repro.core import SEMIRINGS
from repro.runtime import mmo_tiled, use_context
from repro.runtime.closure import closure
from repro.runtime.kernels import mmo_tiled_split_k
from repro.sched import ThreadPoolExecutor

DISPATCH_N = 512
DISPATCH_REPEATS = 5
TINY_REPEATS = 300
MAX_OVERHEAD_RATIO = 1.05

SPEEDUP_N = 2048
SPEEDUP_BANDS = 4
SPEEDUP_WORKERS = 4
MIN_SPEEDUP = 1.8
IDENTITY_N = 512


def _operands(ring, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    if ring.is_boolean():
        return rng.random((m, k)) < 0.4, rng.random((k, n)) < 0.4
    # [0.5, 8.5): continuous (fold order matters) and never colliding
    # with any ring's ⊕ identity, so banding changes nothing silently.
    return rng.uniform(0.5, 8.5, (m, k)), rng.uniform(0.5, 8.5, (k, n))


def _adjacency(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    adj = rng.uniform(1.0, 9.0, (n, n))
    adj[rng.random((n, n)) < 0.5] = np.inf
    np.fill_diagonal(adj, 0.0)
    return adj


def _interleaved_mins(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """min-of-repeats for two fns, alternating so drift hits both alike."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def graph_overhead(records: list[dict]) -> None:
    """Single-launch graph cost over direct dispatch on a 512² mmo.

    Building a GraphBuilder, reserving the node, and walking one node
    through the serial scheduler is a per-call cost of tens of µs,
    independent of operand size; a 512² kernel runs for hundreds of ms
    with several percent of machine noise.  So, as in
    ``bench_dispatch.py``: isolate the per-call overhead on a 16² mmo
    (min-of-many is stable to sub-µs), then hold it against the measured
    512² kernel — the graph path must price in at ≤ 5 % of the kernel it
    orchestrates.
    """
    ring = SEMIRINGS["plus-mul"]

    # (1) Per-call graph overhead, measured where it is measurable.
    # splits=1 lowers to a one-launch graph: build + schedule + resolve,
    # no reduce node — the minimal scheduler round trip.
    ta, tb = _operands(ring, 16, 16, 16, seed=5)
    mmo_tiled("plus-mul", ta, tb)  # warm lazy imports
    mmo_tiled_split_k("plus-mul", ta, tb, splits=1)
    tiny_direct, tiny_graph = _interleaved_mins(
        lambda: mmo_tiled("plus-mul", ta, tb),
        lambda: mmo_tiled_split_k("plus-mul", ta, tb, splits=1),
        TINY_REPEATS,
    )
    overhead = max(0.0, tiny_graph - tiny_direct)

    # (2) The kernel the overhead budget is expressed against.
    n = DISPATCH_N
    a, b = _operands(ring, n, n, n, seed=17)
    direct, graphed = _interleaved_mins(
        lambda: mmo_tiled("plus-mul", a, b),
        lambda: mmo_tiled_split_k("plus-mul", a, b, splits=1),
        DISPATCH_REPEATS,
    )
    ratio = (direct + overhead) / direct
    records.append(
        {
            "case": "graph_overhead", "n": n,
            "tiny_direct_seconds": tiny_direct,
            "tiny_graph_seconds": tiny_graph,
            "overhead_seconds_per_call": overhead,
            "direct_seconds": direct, "graph_seconds": graphed,
            "ratio": round(ratio, 6), "max_ratio": MAX_OVERHEAD_RATIO,
        }
    )
    print(f"graph   per-call overhead {overhead * 1e6:6.1f}us  "
          f"(tiny {tiny_direct * 1e6:.1f}us -> {tiny_graph * 1e6:.1f}us)")
    print(f"graph   {n}²  direct {direct * 1e3:7.2f}ms  "
          f"graph {graphed * 1e3:7.2f}ms  overhead ratio {ratio:.6f}")
    if ratio > MAX_OVERHEAD_RATIO:
        raise SystemExit(
            f"graph overhead {ratio:.3f}x exceeds the "
            f"{MAX_OVERHEAD_RATIO}x budget"
        )


def _one_closure_iteration(adj: np.ndarray, scheduler) -> np.ndarray:
    with use_context(scheduler=scheduler) as ctx:
        return closure(
            "min-plus", adj, bands=SPEEDUP_BANDS, max_iterations=1,
            convergence_check=False, context=ctx,
        ).matrix


def banded_identity(records: list[dict]) -> None:
    """Threaded banded closure == serial, byte for byte.  Always runs."""
    adj = _adjacency(IDENTITY_N, seed=3)
    serial = _one_closure_iteration(adj, None)
    threaded = _one_closure_iteration(
        adj, ThreadPoolExecutor(max_workers=SPEEDUP_WORKERS)
    )
    identical = (
        serial.dtype == threaded.dtype
        and bool(np.array_equal(serial, threaded, equal_nan=True))
    )
    records.append(
        {
            "case": "banded_identity", "n": IDENTITY_N,
            "bands": SPEEDUP_BANDS, "workers": SPEEDUP_WORKERS,
            "identical": identical,
        }
    )
    print(f"identity {IDENTITY_N}² bands={SPEEDUP_BANDS} "
          f"workers={SPEEDUP_WORKERS}  identical={identical}")
    if not identical:
        raise SystemExit(
            "identity: threaded banded closure diverged from serial — "
            "the scheduler must be bit-identical on every graph"
        )


def threaded_speedup(records: list[dict]) -> None:
    """4-band 2048² min-plus closure: 4 workers vs serial, ≥1.8×.

    The row bands are independent launch nodes over GIL-releasing NumPy
    kernels, so a 4-worker pool on ≥4 cores must show real parallelism.
    Machines with fewer cores cannot express it — the gate is recorded
    as skipped there rather than measuring thrash.
    """
    cores = os.cpu_count() or 1
    if cores < SPEEDUP_WORKERS:
        records.append(
            {
                "case": "threaded_speedup", "n": SPEEDUP_N,
                "bands": SPEEDUP_BANDS, "workers": SPEEDUP_WORKERS,
                "skipped": True, "cpu_count": cores,
                "min_speedup": MIN_SPEEDUP,
            }
        )
        print(f"speedup {SPEEDUP_N}²  SKIPPED "
              f"({cores} CPU(s) < {SPEEDUP_WORKERS} workers)")
        return

    adj = _adjacency(SPEEDUP_N, seed=7)
    threaded_pool = ThreadPoolExecutor(max_workers=SPEEDUP_WORKERS)
    # Warm at a smaller size: lazy imports, compile path, pool spin-up.
    warm = _adjacency(256, seed=1)
    _one_closure_iteration(warm, None)
    _one_closure_iteration(warm, threaded_pool)

    serial, threaded = _interleaved_mins(
        lambda: _one_closure_iteration(adj, None),
        lambda: _one_closure_iteration(adj, threaded_pool),
        2,
    )
    speedup = serial / threaded
    records.append(
        {
            "case": "threaded_speedup", "n": SPEEDUP_N,
            "bands": SPEEDUP_BANDS, "workers": SPEEDUP_WORKERS,
            "skipped": False, "cpu_count": cores,
            "serial_seconds": serial, "threaded_seconds": threaded,
            "speedup": round(speedup, 6), "min_speedup": MIN_SPEEDUP,
        }
    )
    print(f"speedup {SPEEDUP_N}² bands={SPEEDUP_BANDS}  "
          f"serial {serial:6.2f}s  threaded {threaded:6.2f}s  "
          f"speedup {speedup:.2f}x (need >= {MIN_SPEEDUP}x)")
    if speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor on "
            f"{cores} CPUs — banded launches are not running concurrently"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    records: list[dict] = []
    graph_overhead(records)
    banded_identity(records)
    threaded_speedup(records)

    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "backends": list(list_backends()),
        "records": records,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
