"""Adaptive dispatch vs the best static backend over the Fig-14 grid.

Standalone script (not a pytest benchmark), wired to ``make check-autotune``
and CI.  Sweeps min-plus launches over the paper's Figure 14 density grid
(plus each size's modelled crossover density) and gates two promises of
the planning stage:

1. **Never worse than 1.05x** — at every grid point, ``backend="auto"``
   starting from a *cold* :class:`~repro.plan.autotune.AutotuneTable`
   must finish within ``MAX_AUTO_RATIO`` of the best static backend
   (plus the fixed :data:`ABS_NOISE_FLOOR_S` allowance).
   Both sides are measured as the *second-best* of ``REPEATS`` tightly
   interleaved warm-paired runs: the trim discards a single outlier
   sample in either direction (one scheduling burst, or one
   anomalously fast run) that a raw min would let decide the gate.
   The repeats share the point's table, so the estimate reflects
   warmed-up choices; the probe repeats that buy observations of the
   runner-up are absorbed by the trim.
2. **The warm table moves a decision** — at one or more crossover-region
   points the choice sequence over repeats must not be constant: the
   observations accumulated across repeats (including the model-tie
   probe) must change which backend the planner picks at least once.

Grid floors: per-launch adaptive overhead (density estimation, plan
lookup, plan-record emission, observation record) is ~90µs on this
substrate, and single-core scheduling noise adds a further ~100–200µs of
irreducible per-sample jitter, so every point's fastest kernel must run
≳5ms for a 5% gate to measure dispatch quality rather than the
substrate's timer — that is why n=128 is absent and the sparsest Fig-14
density (0.001) appears only at n=384.

Usage::

    PYTHONPATH=src python benchmarks/bench_autotune.py
    PYTHONPATH=src python benchmarks/bench_autotune.py \
        --out benchmarks/results/autotune.json          # artifact
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import capable_backends
from repro.plan import AutotuneTable, crossover_density
from repro.runtime import ExecutionContext, Trace, mmo_tiled
from repro.sparse import estimate_density
from repro.timing.backend_cost import LaunchSpec, estimate

RING = "min-plus"
REPEATS = 12  # a multiple of both possible arm counts (2 and 3)
MAX_AUTO_RATIO = 1.05

#: Absolute allowance added to the ratio budget, covering the fixed
#: ~90µs adaptive dispatch overhead plus the substrate's per-sample
#: timer jitter (tightly-interleaved identical kernels still differ by
#: 100–200µs between runs on this single-core host).  Negligible at the
#: grid's large points (0.2% of a 140ms launch); at the smallest (~4ms)
#: points it keeps the gate a test of the planner rather than of the
#: host's clock stability.
ABS_NOISE_FLOOR_S = 250e-6

#: A static arm is only *timed* at a grid point when its model price is
#: within this factor of the cheapest static model price there.  The gate
#: compares auto against the best static, and a backend the model prices
#: 3x out (far beyond the model's ~1.35x residual band) cannot be it —
#: timing it anyway just stretches the point's measurement window (the
#: sparse arm at dense 256³ runs ~20x longer than the winner), giving
#: single-core scheduling drift more room to skew the fast arms.
CONTENDER_BAND = 3.0

#: The static arms auto is gated against: the two sides of the Fig-14
#: crossover.  The emulate backend (an instruction-level emulator kept
#: for dynamic statistics, ~100x slower) is never the best static choice,
#: and timing it between the fast arms only adds cache interference.
STATIC_ARMS = ("vectorized", "sparse")

#: (n, densities): the Fig-14 sparsity grid (s ∈ {0.999, 0.99, 0.9, 0.7}
#: → d ∈ {0.001, 0.01, 0.1, 0.3}) plus fully dense, floored per size so
#: every point's *fastest* kernel runs ≳5ms (see the module docstring),
#: and each size's modelled crossover density spliced in below.  The full
#: Fig-14 density set appears at n=384; smaller sizes carry the subset
#: their kernels can support.
GRID: dict[int, list[float]] = {
    192: [0.01, 0.1, 0.3, 1.0],
    256: [0.005, 0.01, 0.1, 0.3, 1.0],
    384: [0.001, 0.01, 0.1, 0.3, 1.0],
}


def _operands(n: int, density: float, seed: int) -> np.ndarray:
    """One min-plus operand: explicit entries at ``density``, ⊕-identity
    (``+inf``) elsewhere."""
    rng = np.random.default_rng(seed)
    explicit = rng.uniform(0.5, 8.5, (n, n))
    if density >= 1.0:
        return explicit
    return np.where(rng.random((n, n)) < density, explicit, np.inf)


def _static_backends() -> list[str]:
    """The timed static arms, capability-checked against the ring."""
    capable = set(capable_backends(RING))
    missing = [name for name in STATIC_ARMS if name not in capable]
    if missing:
        raise SystemExit(f"static arm(s) not capable of {RING}: {missing}")
    return list(STATIC_ARMS)


def sweep_point(n: int, density: float, statics: list[str]) -> dict:
    """One grid point: timed auto repeats (shared cold table) vs statics."""
    a = _operands(n, density, seed=round(1000 * density) * 7 + n)
    table = AutotuneTable()
    trace = Trace()
    ctx = ExecutionContext(backend="auto", autotune=table, trace=trace)

    # Only model-plausible contenders are timed (see CONTENDER_BAND).
    est = estimate_density(a, RING)
    spec = LaunchSpec(n, n, n, density_a=est, density_b=est)
    model = {name: estimate(name, spec) for name in statics}
    floor = min(model.values())
    contenders = [s for s in statics if model[s] <= CONTENDER_BAND * floor]

    # Tight rotated interleave with warm pairs: every repeat visits each
    # arm once (order rotated by the repeat index so every arm occupies
    # every slot equally often), and each visit runs the arm twice back
    # to back, timing only the second run.  The untimed first run makes
    # every timed run's predecessor *its own kernel* — without it, the
    # static dense arm keeps inheriting warm caches from auto (which runs
    # the same kernel) while auto inherits the sparse arm's trashed ones,
    # a systematic ~10% bias no amount of repeats averages away.  On a
    # single-core host the residual noise is bursty; adjacent arms are
    # taxed alike and min-of-REPEATS discards the bursts.
    static_ctx = {name: ExecutionContext(backend=name) for name in contenders}
    for sctx in static_ctx.values():  # warm lazy imports / NumPy dispatch
        mmo_tiled(RING, a, a, context=sctx)
    arms: list[tuple[str, ExecutionContext]] = [("auto", ctx)]
    arms += list(static_ctx.items())
    times: dict[str, list[float]] = {name: [] for name, _ in arms}
    for repeat in range(REPEATS):
        offset = repeat % len(arms)
        for name, actx in arms[offset:] + arms[:offset]:
            mmo_tiled(RING, a, a, context=actx)
            t0 = time.perf_counter()
            mmo_tiled(RING, a, a, context=actx)
            times[name].append(time.perf_counter() - t0)
    auto_times = times.pop("auto")
    static_times = times

    choices = [p.backend for p in trace.plans]
    probes = [p.probe for p in trace.plans]

    def trimmed_best(samples: list[float]) -> float:
        """Second-best sample: one outlier in either direction is free."""
        return sorted(samples)[1]

    static_best = {
        name: trimmed_best(times) for name, times in static_times.items()
    }
    best_static_name = min(static_best, key=static_best.get)
    best_static = static_best[best_static_name]
    auto_best = trimmed_best(auto_times)
    return {
        "n": n,
        "density": density,
        "estimated_density": est,
        "contenders": contenders,
        "auto_seconds": auto_best,
        "auto_repeat_seconds": auto_times,
        "auto_choices": choices,
        "auto_probes": probes,
        "cold_choice": choices[0],
        "warm_choice": choices[-1],
        "warm_shifted": len(set(choices)) > 1,
        "static_seconds": static_best,
        "static_repeat_seconds": static_times,
        "best_static": best_static_name,
        "ratio": round(auto_best / best_static, 6),
        "table_buckets": len(table),
        "table": table.to_json(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON artifact here (default: print to stdout)",
    )
    args = parser.parse_args(argv)

    statics = _static_backends()
    points: list[dict] = []
    failures: list[str] = []
    for n, densities in GRID.items():
        for density in sorted(set(densities + [round(crossover_density(n), 4)])):
            if density <= 0.0:
                continue  # no modelled crossover at this size
            point = sweep_point(n, density, statics)
            points.append(point)
            flag = " *" if point["warm_shifted"] else ""
            print(
                f"n={n:4d} d={density:7.4f}  auto {point['auto_seconds'] * 1e3:8.3f}ms"
                f" ({point['warm_choice']:10s})  best static"
                f" {min(point['static_seconds'].values()) * 1e3:8.3f}ms"
                f" ({point['best_static']:10s})  ratio {point['ratio']:.3f}{flag}"
            )
            budget = (
                MAX_AUTO_RATIO * min(point["static_seconds"].values())
                + ABS_NOISE_FLOOR_S
            )
            if point["auto_seconds"] > budget:
                failures.append(
                    f"n={n} d={density}: auto at {point['ratio']:.3f}x of "
                    f"{point['best_static']} (> {MAX_AUTO_RATIO}x "
                    f"+ {ABS_NOISE_FLOOR_S * 1e6:.0f}µs)"
                )

    shifted = [
        {"n": p["n"], "density": p["density"], "choices": p["auto_choices"]}
        for p in points
        if p["warm_shifted"]
    ]
    artifact = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ring": RING,
        "repeats": REPEATS,
        "max_auto_ratio": MAX_AUTO_RATIO,
        "abs_noise_floor_s": ABS_NOISE_FLOOR_S,
        "static_backends": statics,
        "crossovers": {
            str(n): round(crossover_density(n), 6) for n in GRID
        },
        "warm_shifts": shifted,
        "points": points,
    }
    payload = json.dumps(artifact, indent=2)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)

    if failures:
        raise SystemExit(
            "auto exceeded the static-backend budget:\n  " + "\n  ".join(failures)
        )
    if not shifted:
        raise SystemExit(
            "warm autotune table never shifted a choice — expected at least "
            "one crossover-region point to re-decide after observations"
        )
    print(
        f"all {len(points)} points within {MAX_AUTO_RATIO}x; "
        f"{len(shifted)} warm shift(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
