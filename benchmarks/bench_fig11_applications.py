"""Figure 11: the eight benchmark applications.

Benchmarks each application's real baseline and SIMD²-ized implementation
on validation-scale inputs (the emulation substrate is Python, so inputs
are scaled down; the *paper-size* latencies and speedups come from the
calibrated timing model, printed as the Figure 11 table).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    aplp_baseline,
    aplp_simd2,
    apsp_baseline,
    apsp_simd2,
    gtc_baseline,
    gtc_simd2,
    knn_baseline,
    knn_simd2,
    max_capacity_baseline,
    max_capacity_simd2,
    max_reliability_baseline,
    max_reliability_simd2,
    min_reliability_baseline,
    min_reliability_simd2,
    mst_baseline,
    mst_simd2,
)
from repro.bench import fig11_application_rows, render_table
from repro.datasets import (
    GraphSpec,
    PointCloudSpec,
    boolean_graph,
    capacity_graph,
    dag_distance_graph,
    distance_graph,
    gaussian_clusters,
    reliability_graph,
    undirected_distance_graph,
)

SPEC = GraphSpec(num_vertices=96, edge_probability=0.08, seed=1)

_CASES = {
    "APSP": (apsp_baseline, apsp_simd2, lambda: distance_graph(SPEC)),
    "APLP": (aplp_baseline, aplp_simd2, lambda: dag_distance_graph(SPEC)),
    "MCP": (
        max_capacity_baseline,
        max_capacity_simd2,
        lambda: capacity_graph(SPEC, maximize=True),
    ),
    "MAXRP": (
        max_reliability_baseline,
        max_reliability_simd2,
        lambda: reliability_graph(SPEC, maximize=True),
    ),
    "MINRP": (
        min_reliability_baseline,
        min_reliability_simd2,
        lambda: reliability_graph(SPEC, maximize=False),
    ),
    "MST": (mst_baseline, mst_simd2, lambda: undirected_distance_graph(SPEC)),
    "GTC": (gtc_baseline, gtc_simd2, lambda: boolean_graph(SPEC, reflexive=False)),
}


@pytest.mark.parametrize("app", sorted(_CASES), ids=str)
def test_baseline_implementation(benchmark, app):
    baseline_fn, _, make_input = _CASES[app]
    data = make_input()
    benchmark(baseline_fn, data)


@pytest.mark.parametrize("app", sorted(_CASES), ids=str)
def test_simd2_implementation(benchmark, app):
    _, simd2_fn, make_input = _CASES[app]
    data = make_input()
    benchmark(simd2_fn, data)


def test_knn_baseline(benchmark):
    points, _ = gaussian_clusters(PointCloudSpec(num_points=192, dimensions=32, seed=2))
    benchmark(knn_baseline, points[:96], points[96:], 5)


def test_knn_simd2(benchmark):
    points, _ = gaussian_clusters(PointCloudSpec(num_points=192, dimensions=32, seed=2))
    benchmark(knn_simd2, points[:96], points[96:], 5)


def test_fig11_speedup_table(benchmark, save_table):
    rows = benchmark(fig11_application_rows)
    save_table("fig11_applications", render_table(rows, title="Figure 11 (modelled)"))
    gmeans = [row["speedup_units"] for row in rows if row["app"] == "GMEAN"]
    # Paper: geometric mean 10.76–13.96x, max 38.59x.
    assert all(8.0 < g < 14.0 for g in gmeans)
    best = max(row["speedup_units"] for row in rows if row["app"] != "GMEAN")
    assert 30.0 < best < 45.0
