"""Figure 13: applications on the sparse (2:4 structured) SIMD² unit.

Benchmarks the real structured-sparsity substrate (pruning, compression,
functional equivalence) and regenerates the Figure 13 speedups from the
timing model with the 2× sparse datapath enabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fig13_sparse_unit_rows, render_table
from repro.core import mmo
from repro.sparse import Structured24Matrix, check_2_4, prune_2_4

N = 256


@pytest.fixture(scope="module")
def dense_operand() -> np.ndarray:
    return np.random.default_rng(7).integers(-8, 9, (N, N)).astype(np.float32)


def test_prune_2_4(benchmark, dense_operand):
    pruned = benchmark(prune_2_4, dense_operand)
    assert check_2_4(pruned)


def test_compress_decompress(benchmark, dense_operand):
    pruned = prune_2_4(dense_operand)

    def round_trip():
        return Structured24Matrix.compress(pruned).decompress()

    restored = benchmark(round_trip)
    np.testing.assert_array_equal(restored, pruned)


def test_structured_mmo(benchmark, dense_operand):
    pruned = prune_2_4(dense_operand)
    other = np.random.default_rng(8).integers(-8, 9, (N, N)).astype(np.float32)
    result = benchmark(mmo, "min-plus", pruned, other)
    assert result.shape == (N, N)


def test_fig13_speedup_table(benchmark, save_table):
    rows = benchmark(fig13_sparse_unit_rows)
    save_table("fig13_sparse_unit", render_table(rows, title="Figure 13 (modelled)"))
    gains = [row["gain_over_dense"] for row in rows if "gain_over_dense" in row]
    # Paper: 1.60–2.05x over the dense SIMD² unit; up to 68.33x overall.
    assert all(1.0 <= g <= 2.05 for g in gains)
    best = max(row["sparse_speedup"] for row in rows if row["app"] != "GMEAN")
    assert 55.0 < best < 85.0
