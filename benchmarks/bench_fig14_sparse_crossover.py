"""Figure 14: sparse (cuSparse-class spGEMM) vs dense GEMM crossover.

Benchmarks the real CSR/spGEMM substrate across sparsity levels and
regenerates the Figure 14 speedup/OOM grid from the crossover model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fig14_sparse_crossover_rows, render_table
from repro.core import mmo
from repro.sparse import CsrMatrix, spgemm

N = 128


def _sparse_dense_pair(sparsity: float, seed: int = 11):
    rng = np.random.default_rng(seed)
    dense = np.where(
        rng.random((N, N)) >= sparsity, rng.integers(1, 9, (N, N)), 0
    ).astype(np.float64)
    return dense, CsrMatrix.from_dense(dense)


@pytest.mark.parametrize("sparsity", [0.7, 0.9, 0.99], ids=lambda s: f"s{s}")
def test_spgemm(benchmark, sparsity):
    dense, csr = _sparse_dense_pair(sparsity)
    result, stats = benchmark(spgemm, "plus-mul", csr, csr)
    assert result.shape == (N, N)
    # Work shrinks quadratically with density.
    assert stats.products <= (N * (1 - sparsity) + 8) ** 2 * N


def test_dense_reference(benchmark):
    dense, _ = _sparse_dense_pair(0.9)
    benchmark(mmo, "plus-mul", dense, dense)


def test_spgemm_matches_dense(benchmark):
    dense, csr = _sparse_dense_pair(0.95)

    def both():
        sparse_result, _ = spgemm("plus-mul", csr, csr)
        return sparse_result.to_dense_for("plus-mul")

    sparse_dense = benchmark(both)
    np.testing.assert_allclose(sparse_dense, mmo("plus-mul", dense, dense), rtol=1e-5)


def test_fig14_crossover_table(benchmark, save_table):
    rows = benchmark(fig14_sparse_crossover_rows)
    save_table(
        "fig14_sparse_crossover", render_table(rows, title="Figure 14 (modelled)")
    )
    by_size = {row["size"]: row for row in rows}
    # Paper: no crossover at 1024; crossover ≳99% at 4096; OOM region at 16384.
    assert by_size[1024]["crossover"] == "never"
    assert 0.975 <= by_size[4096]["crossover"] <= 0.995
    assert by_size[16384]["s=0.9"] is None
    assert by_size[16384]["s=0.999"] > 10
