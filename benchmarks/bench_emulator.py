"""Performance of the reproduction itself: emulator and toolchain throughput.

Not a paper figure — these benches track the Python substrate's own speed
(instructions retired per second, unit ops per second, assembler/encoder
throughput, closure iteration rates) so regressions in the emulator are
caught the same way functional regressions are.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TILE
from repro.hw import SharedMemory, Simd2Device, WarpExecutor
from repro.isa import (
    ElementType,
    MmoOpcode,
    Program,
    assemble,
    decode_program,
    disassemble,
    encode_program,
)
from repro.isa.optimizer import optimize_program
from repro.isa.verifier import verify_program
from repro.runtime import mmo_tiled
from repro.runtime.kernels import build_tile_mmo_program


@pytest.fixture(scope="module")
def deep_program():
    program, c_addr, d_addr = build_tile_mmo_program(
        MmoOpcode.MINPLUS, tiles_k=16, boolean=False
    )
    shm = SharedMemory()
    rng = np.random.default_rng(0)
    for kk in range(16):
        shm.write_matrix(kk * 256, rng.integers(1, 9, (TILE, TILE)), ElementType.F16)
        shm.write_matrix((16 + kk) * 256, rng.integers(1, 9, (TILE, TILE)), ElementType.F16)
    shm.write_matrix(c_addr, np.full((TILE, TILE), np.inf), ElementType.F32)
    return program, shm


def test_warp_execution_throughput(benchmark, deep_program):
    program, shm = deep_program

    def run():
        return WarpExecutor(shm).run(program)

    stats = benchmark(run)
    assert stats.mmos == 16
    assert stats.unit_ops == 16 * 64


def test_device_launch_throughput(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 5, (64, 64)).astype(float)

    def run():
        device = Simd2Device(sm_count=4)
        return mmo_tiled("min-plus", a, a, backend="emulate", device=device)

    result, stats = benchmark(run)
    assert stats.execution.mmos == 4 * 4 * 4


def test_assembler_round_trip_throughput(benchmark, deep_program):
    program, _ = deep_program
    text = disassemble(list(program))

    def round_trip():
        return assemble(text)

    instrs = benchmark(round_trip)
    assert Program(instrs) == program


def test_binary_codec_throughput(benchmark, deep_program):
    program, _ = deep_program
    instrs = list(program)

    def round_trip():
        return decode_program(encode_program(instrs))

    decoded = benchmark(round_trip)
    assert decoded == instrs


def test_verifier_throughput(benchmark, deep_program):
    program, _ = deep_program
    report = benchmark(verify_program, program)
    assert report.ok


def test_optimizer_throughput(benchmark, deep_program):
    program, _ = deep_program
    result = benchmark(optimize_program, program)
    assert result.removed == 0
